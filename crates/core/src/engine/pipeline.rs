//! Image-level diff pipeline: the single-submitter facade over the
//! sharded multi-image executor ([`crate::engine::executor`]).
//!
//! [`crate::engine::parallel`] parallelises *within* one row by splitting
//! the cell array across threads, paying thread-spawn and three barriers
//! per row. For whole images the natural unit of parallelism is the row
//! pair itself — rows are independent, so a pool of workers can each diff
//! its own rows, exactly like a rack of systolic chips scanning different
//! board regions.
//!
//! Since the executor refactor, `DiffPipeline` owns a private
//! [`DiffExecutor`] and submits every batch as one *job* (and its
//! streaming rows through one persistent job). The worker pool, sharded
//! work-stealing scheduler, supervision layer and observability ledger
//! all live in the executor; what remains here is the image-level
//! front end:
//!
//! * **Zero-copy submission.** Batch jobs reference the input images
//!   through `Arc`s ([`DiffPipeline::diff_images_shared`] shares the
//!   caller's images outright; [`DiffPipeline::diff_images`] clones each
//!   row once into per-chunk storage). Checking a chunk out for
//!   supervision clones an `Arc`, never row data.
//! * **Batched, cost-aware chunking.** The planner splits the image into
//!   contiguous row chunks weighted by per-row run counts (target
//!   `~total_runs / (threads * 4)` runs per chunk, overridable via
//!   [`DiffPipelineConfig::chunk_target`]). Derived plans are additionally
//!   split until every worker has at least one chunk, so a skewed image
//!   can never idle most of the pool.
//! * **Signature prefilter.** Before planning, matching per-row
//!   signatures can resolve unchanged rows host-side (see
//!   [`DiffPipelineConfig::signature_prefilter`]), with an adaptive
//!   bypass, paranoid verification, and an inline path for tiny
//!   residuals that skips the pool round-trip entirely.
//! * **Adaptive kernels.** Each worker diffs rows through
//!   [`crate::engine::kernel::diff_row`] on per-worker reusable scratch
//!   ([`KernelScratch`]): trivial rows short-circuit, sparse rows take the
//!   `Θ(k1 + k2)` RLE merge, dense rows the SIMD-accelerated
//!   run-cancellation kernel (see [`crate::engine::simd`] and
//!   [`DiffPipelineConfig::simd`]), and [`Kernel::Systolic`] forces the
//!   paper's cycle-accurate machine.
//!
//! Two front-ends are provided: the batch API above, and streaming
//! [`DiffPipeline::submit`] / [`DiffPipeline::collect`] that feed row pairs
//! as they arrive (e.g. from a scanner head), matching each result to its
//! [`Ticket`].
//!
//! # Supervision
//!
//! The pool is built for the continuous-inspection service the paper
//! targets, where one crashed row must not take down the line. The *chunk*
//! is the checkout and retry unit; every row inside it keeps its own
//! ticket, so per-row fault accounting (and the deterministic
//! [`FaultPlan`]) is unchanged from PR 2:
//!
//! * **Caught panics.** Each row runs inside `catch_unwind`; a panicking
//!   row discards the worker's (possibly corrupt) kernel state and its
//!   whole chunk is re-enqueued, up to [`DiffPipelineConfig::retry_limit`]
//!   extra attempts. A chunk that keeps crashing fails only the culprit row
//!   (as a structured [`SystolicError::RowFailed`]); the sibling rows are
//!   re-queued as smaller chunks.
//! * **Dead workers.** A worker parks the chunk it is processing in its
//!   shard's *checkout slot*. The executor's dedicated supervisor thread
//!   notices worker threads that exited without being asked to shut
//!   down, respawns them, and recovers the chunk from the dead worker's
//!   slot — re-enqueued, or failed past the retry budget.
//! * **Stalls and deadlines.** [`DiffPipeline::collect_timeout`] (and the
//!   per-row deadline of [`DiffPipelineConfig::row_deadline`], honoured by
//!   the batch front-ends) bounds how long a wedged worker can hold the
//!   caller, returning [`SystolicError::DeadlineExceeded`] instead of
//!   hanging. An aborted batch *abandons* its job: the pipeline reports
//!   idle again immediately ([`DiffPipeline::in_flight`] drops to 0,
//!   [`DiffPipeline::abandoned`] tracks the wedged remainder), and any
//!   stale delivery that the wedged worker eventually produces is
//!   discarded on arrival — counted as `rows_discarded`, never handed to
//!   a later batch. Dropping the pipeline never deadlocks: workers get
//!   [`DiffPipelineConfig::shutdown_grace`] to exit, after which wedged
//!   threads are detached instead of joined.
//!
//! Retries, respawns and deadline expiries are counted in
//! [`PipelineStats`] (attributed per job — exact even when other jobs
//! share the executor) and [`DiffPipeline::supervision_counters`]
//! (pipeline lifetime), alongside per-kernel row counts and the
//! allocations the zero-copy path avoided.
//!
//! Results are bit-identical to the sequential reference
//! ([`crate::image::xor_image`]) for every kernel policy; only scheduling
//! and the per-row algorithm change. The test-suite asserts this across
//! all engines, all kernels and across injected faults.

use crate::engine::executor::{
    plan_ranges, ChunkSpec, DiffExecutor, DiffExecutorConfig, JobHandle, RowsSource,
};
use crate::engine::kernel::{self, Kernel, KernelChoice, KernelScratch};
use crate::engine::simd::SimdLevel;
use crate::error::SystolicError;
use crate::image::check_dims;
use crate::obs::{ObsConfig, TraceKind};
use crate::stats::{ArrayStats, PipelineStats, SigPrefilterMode};
use rle::{RleImage, RleRow};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use crate::engine::fault::FaultPlan;

/// In paranoid mode ([`DiffPipelineConfig::verify_signatures`]), every
/// `SIG_VERIFY_SAMPLE`-th signature skip of a batch (starting with the
/// first) is cross-checked against the reference XOR.
const SIG_VERIFY_SAMPLE: usize = 16;

/// When the signature prefilter resolves all but at most this many rows,
/// the leftovers are diffed inline on the host instead of dispatched: for
/// a handful of rows the pool round-trip (enqueue, wake, collect
/// handshake) costs more than the kernels themselves, and it is exactly
/// the low-churn frame-sequence case the prefilter exists for.
const INLINE_RESIDUAL_ROWS: usize = 16;

/// Poison-tolerant lock: a holder that panicked leaves consistent-enough
/// data (every critical section is a single push/pop/take), so callers
/// proceed on the recovered guard instead of propagating the poison.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifies one submitted row pair; returned by [`DiffPipeline::submit`]
/// and echoed by [`DiffPipeline::collect`] so streaming callers can match
/// results (which complete out of order) to submissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The submission sequence number (0 for the first row ever submitted).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }

    /// Wraps a raw sequence number (executor-internal; tickets handed to
    /// callers always originate from a submission).
    pub(crate) fn from_id(id: u64) -> Self {
        Self(id)
    }
}

/// One completed row diff, as handed back by [`DiffPipeline::collect`].
#[derive(Debug)]
pub struct RowOutcome {
    /// Which submission this result answers.
    pub ticket: Ticket,
    /// Index of the pool worker that processed the row (for utilization
    /// accounting; see [`PipelineStats::effective_workers`]).
    pub worker: usize,
    /// Which kernel diffed the row; `None` when the row errored before a
    /// kernel could run (or was failed by the supervisor).
    pub kernel: Option<KernelChoice>,
    /// The diff row and its per-row statistics, or the error for this row
    /// pair.
    pub result: Result<(RleRow, ArrayStats), SystolicError>,
}

/// Configuration for a supervised [`DiffPipeline`].
#[derive(Clone, Debug)]
pub struct DiffPipelineConfig {
    /// Worker threads in the pool (must be > 0).
    pub threads: usize,
    /// Extra attempts the supervisor grants a chunk whose worker panicked
    /// or died. A chunk is attempted at most `retry_limit + 1` times before
    /// its culprit row surfaces as [`SystolicError::RowFailed`].
    pub retry_limit: u32,
    /// Per-row collection deadline honoured by the batch front-ends: the
    /// longest they wait for the *next* completed chunk before giving up
    /// with [`SystolicError::DeadlineExceeded`]. `None` (the default) waits
    /// indefinitely (supervision still recovers dead workers; only genuine
    /// stalls can block).
    pub row_deadline: Option<Duration>,
    /// How long [`Drop`] waits for workers to exit before detaching wedged
    /// threads instead of joining them (the never-deadlock guarantee).
    pub shutdown_grace: Duration,
    /// Kernel policy workers diff rows with (default [`Kernel::Auto`]).
    pub kernel: Kernel,
    /// SIMD level for the packed kernel's run-comparison scan. `None` (the
    /// default) resolves from the `SYSTOLIC_SIMD` environment variable,
    /// falling back to runtime CPU detection. `Some` requests an explicit
    /// level, clamped down to what the host actually supports — a forced
    /// level can narrow the choice, never exceed the hardware.
    pub simd: Option<SimdLevel>,
    /// Target scheduling weight per chunk, measured in input runs (each row
    /// weighs `k1 + k2 + 1`). `None` (the default) derives it from the
    /// batch: `total_weight / (threads * 4)`, clamped to at least one row —
    /// and the derived plan is further split until it has at least one
    /// chunk per worker (an explicit target is honoured exactly).
    pub chunk_target: Option<usize>,
    /// Observability: `Some` attaches an [`crate::obs::Observer`] (metrics
    /// registry + trace ring) to the pipeline. `None` (the default)
    /// compiles every recording site down to one predictable `if let`
    /// branch — no timestamps are taken and nothing is recorded.
    pub observe: Option<ObsConfig>,
    /// Signature prefilter (default off): before planning chunks, the batch
    /// front-ends compare the two images' cached per-row signatures
    /// ([`rle::RleRow::signature`]) and resolve every matching row
    /// host-side as an empty diff — no submit, no checkout round-trip, no
    /// kernel. Skips surface in [`PipelineStats::rows_sig_skipped`], the
    /// `rows_sig_skipped` metric and `sig_skip` trace events. Equal rows
    /// always match (signatures are canonical-view), and distinct rows
    /// collide with probability ~2⁻⁶⁴; use [`Self::verify_signatures`] if
    /// even that is too much. Ignored under [`Kernel::Systolic`], whose
    /// contract is cycle-exact per-row statistics against the reference
    /// machine — skipping rows would zero their iteration counts.
    pub signature_prefilter: bool,
    /// Adaptive auto-off for the prefilter (default `0.75`): when the
    /// previous batch's observed skip rate (fraction of rows whose
    /// signatures matched) falls below this threshold, the next batch
    /// *bypasses* skip resolution — every row goes to the kernels — while
    /// still comparing the cached signatures (a u64 compare per row) to
    /// keep measuring, so the prefilter re-arms the moment churn drops
    /// again. `0.75` matches the measured break-even: above ~25 % churn
    /// the prefilter's bookkeeping costs more than it saves (the
    /// BENCH_delta sweep), which used to be a footgun callers had to
    /// know about. Set `0.0` to disable adaptation (always resolve
    /// skips, the pre-adaptive behaviour). The first batch after build
    /// always runs the prefilter (there is no rate to adapt to yet);
    /// the engaged mode is reported in [`PipelineStats::sig_prefilter`].
    pub sig_prefilter_min_skip_rate: f64,
    /// Paranoid mode for the prefilter (default off): cross-check a
    /// deterministic sample of signature skips (the first of each batch,
    /// then every 16th) against the reference XOR. A confirmed check
    /// counts in [`PipelineStats::sig_verified`]; a caught collision
    /// substitutes the reference diff for the empty row (the output stays
    /// exact) and counts in [`PipelineStats::sig_collisions`].
    pub verify_signatures: bool,
    /// Deterministic fault schedule for tests (see
    /// [`crate::engine::fault`]).
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<FaultPlan>,
    /// Test hook: image rows whose signature comparison is forced to
    /// "equal" even when the rows differ — a synthetic 64-bit collision,
    /// used by the false-skip drill to prove what [`Self::verify_signatures`]
    /// catches.
    #[cfg(feature = "fault-injection")]
    pub fault_sig_collisions: Vec<usize>,
}

impl Default for DiffPipelineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            retry_limit: 2,
            row_deadline: None,
            shutdown_grace: Duration::from_millis(500),
            kernel: Kernel::Auto,
            simd: None,
            chunk_target: None,
            observe: None,
            signature_prefilter: false,
            sig_prefilter_min_skip_rate: 0.75,
            verify_signatures: false,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
            #[cfg(feature = "fault-injection")]
            fault_sig_collisions: Vec::new(),
        }
    }
}

impl DiffPipelineConfig {
    /// A default configuration over `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Sets the retry budget (see [`Self::retry_limit`]).
    #[must_use]
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Sets the per-row deadline (see [`Self::row_deadline`]).
    #[must_use]
    pub fn row_deadline(mut self, deadline: Duration) -> Self {
        self.row_deadline = Some(deadline);
        self
    }

    /// Sets the shutdown grace period (see [`Self::shutdown_grace`]).
    #[must_use]
    pub fn shutdown_grace(mut self, grace: Duration) -> Self {
        self.shutdown_grace = grace;
        self
    }

    /// Sets the kernel policy (see [`Self::kernel`]).
    #[must_use]
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Requests an explicit SIMD level (see [`Self::simd`]).
    #[must_use]
    pub fn simd(mut self, level: SimdLevel) -> Self {
        self.simd = Some(level);
        self
    }

    /// Sets the chunk scheduling weight (see [`Self::chunk_target`]).
    #[must_use]
    pub fn chunk_target(mut self, runs_per_chunk: usize) -> Self {
        self.chunk_target = Some(runs_per_chunk);
        self
    }

    /// Enables the signature prefilter (see [`Self::signature_prefilter`]).
    #[must_use]
    pub fn signature_prefilter(mut self) -> Self {
        self.signature_prefilter = true;
        self
    }

    /// Sets the adaptive prefilter bypass threshold (see
    /// [`Self::sig_prefilter_min_skip_rate`]); `0.0` pins the prefilter
    /// active regardless of the observed skip rate.
    #[must_use]
    pub fn sig_prefilter_min_skip_rate(mut self, rate: f64) -> Self {
        self.sig_prefilter_min_skip_rate = rate;
        self
    }

    /// Enables paranoid skip verification (see [`Self::verify_signatures`]);
    /// implies the prefilter itself is still opted into separately.
    #[must_use]
    pub fn verify_signatures(mut self) -> Self {
        self.verify_signatures = true;
        self
    }

    /// Forces synthetic signature collisions on the given image rows (test
    /// builds only; see [`Self::fault_sig_collisions`]).
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn fault_sig_collisions(mut self, rows: Vec<usize>) -> Self {
        self.fault_sig_collisions = rows;
        self
    }

    /// Enables observability with the default settings (see
    /// [`Self::observe`]).
    #[must_use]
    pub fn observe(mut self) -> Self {
        self.observe = Some(ObsConfig::default());
        self
    }

    /// Enables observability with explicit settings (see [`Self::observe`]).
    #[must_use]
    pub fn observe_with(mut self, obs: ObsConfig) -> Self {
        self.observe = Some(obs);
        self
    }

    /// Installs a deterministic fault schedule (test builds only).
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the pipeline described by this configuration.
    #[must_use]
    pub fn build(self) -> DiffPipeline {
        DiffPipeline::with_config(self)
    }
}

/// Lifetime totals of the supervisor's interventions (never reset; the
/// per-batch view lives in [`PipelineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionCounters {
    /// Chunks re-enqueued after a worker panic or death.
    pub retries: u64,
    /// Worker threads replaced after dying unexpectedly.
    pub respawns: u64,
    /// Deadline expiries observed by collectors.
    pub timeouts: u64,
}

/// A point-in-time view of how much work the executor is carrying — the
/// input to admission-control decisions (see [`DiffPipeline::load`]).
/// Mirrors the `queue_depth`/`in_flight` gauges but is read from the
/// executor's exact bookkeeping rather than the racy metric atomics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineLoad {
    /// Chunks sitting in shard queues, not yet checked out.
    pub queued_chunks: usize,
    /// Rows delivered to their job but not yet collected by its owner.
    pub ready_chunks: usize,
    /// Rows submitted but not yet handed back to the caller.
    pub in_flight_rows: usize,
    /// Rows written off by an aborted job whose stale results are still
    /// outstanding (see [`DiffPipeline::abandoned`]).
    pub abandoned_rows: usize,
}

/// Deadline policy for one batch run: either the configured per-collect
/// `row_deadline`, or a hard wall-clock instant for the whole batch (the
/// per-request deadline network front ends map onto `collect_timeout`).
#[derive(Clone, Copy, Debug)]
enum BatchDeadline {
    Config,
    Total(Instant),
}

/// Outcome of the signature prefilter for one batch: the rows resolved
/// host-side (never planned, submitted or ticketed) together with their
/// pre-computed results and aggregate statistics.
struct SkipPlan {
    /// `resolved[i]` — row `i` is handled host-side; the chunk planner
    /// must not include it.
    resolved: Vec<bool>,
    /// Rows skipped on a signature match (empty diff), in row order.
    skipped: Vec<usize>,
    /// Collisions caught by paranoid mode: the row's reference diff
    /// replaces the (wrong) empty row.
    collisions: Vec<(usize, RleRow)>,
    /// Residual rows diffed inline on the host (small-batch shortcut; see
    /// [`INLINE_RESIDUAL_ROWS`]) with the kernel that ran each.
    inline: Vec<(usize, RleRow, KernelChoice)>,
    /// Largest per-row iteration count among the inline rows, folded into
    /// [`PipelineStats::max_row_iterations`].
    max_inline_iterations: u64,
    /// Aggregate [`ArrayStats`] contribution of every resolved row
    /// (`k1`/`k2` input sizes; zero iterations — no array ran).
    stats: ArrayStats,
    /// Skips cross-checked against the reference XOR and confirmed.
    verified: usize,
}

/// A persistent, supervised pool of row-diff workers (see the module
/// docs) — since the executor refactor, a single-submitter facade over a
/// private [`DiffExecutor`]: each batch runs as one job, and streaming
/// rows flow through one persistent job.
///
/// Dropping the pipeline drains the remaining queue and joins every worker
/// that exits within [`DiffPipelineConfig::shutdown_grace`]; wedged workers
/// are detached so `Drop` never deadlocks.
pub struct DiffPipeline {
    executor: DiffExecutor,
    /// The persistent non-ledger job [`Self::submit`] pushes single-row
    /// chunks through.
    streaming: JobHandle,
    config: DiffPipelineConfig,
    /// Persistent kernel scratch for the host-side inline residual path
    /// (see [`INLINE_RESIDUAL_ROWS`]), so tiny batches reuse buffers
    /// exactly like a worker does.
    host_scratch: KernelScratch,
    /// The previous batch's observed signature skip rate (matched rows /
    /// total rows), driving the adaptive prefilter bypass. `None` until a
    /// non-empty batch has been measured.
    sig_skip_rate: Option<f64>,
    /// How the prefilter engaged for the batch currently being planned;
    /// copied into [`PipelineStats::sig_prefilter`] by `run_batch`.
    sig_mode: SigPrefilterMode,
}

impl std::fmt::Debug for DiffPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffPipeline")
            .field("workers", &self.executor.workers())
            .field("in_flight", &self.in_flight())
            .field("abandoned", &self.abandoned())
            .field("counters", &self.executor.counters())
            .finish()
    }
}

impl DiffPipeline {
    /// Spawns a pool of `threads` persistent workers with the default
    /// supervision settings.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_config(DiffPipelineConfig::new(threads))
    }

    /// Spawns a pool described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0`.
    #[must_use]
    pub fn with_config(config: DiffPipelineConfig) -> Self {
        let executor = DiffExecutorConfig {
            threads: config.threads,
            retry_limit: config.retry_limit,
            shutdown_grace: config.shutdown_grace,
            kernel: config.kernel,
            simd: config.simd,
            chunk_target: config.chunk_target,
            observe: config.observe,
            #[cfg(feature = "fault-injection")]
            fault_plan: config.fault_plan.clone(),
        }
        .build();
        let streaming = executor.streaming_job();
        let host_scratch = KernelScratch::with_simd(executor.simd_level());
        Self {
            executor,
            streaming,
            config,
            host_scratch,
            sig_skip_rate: None,
            sig_mode: SigPrefilterMode::Off,
        }
    }

    /// Number of workers in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// Rows submitted but not yet collected.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.executor.in_flight()
    }

    /// Rows written off by an aborted batch whose results are still
    /// outstanding — held by a wedged worker. Each one is discarded (and
    /// this count decremented) when its stale result finally arrives or
    /// its dead worker is reaped, so a healed pipeline drains back to 0.
    #[must_use]
    pub fn abandoned(&self) -> usize {
        self.executor.abandoned()
    }

    /// The ticket the *next* submitted row will receive. Batch front-ends
    /// allocate one ticket per row in submission order, so a caller that
    /// reads this before and after a batch call knows the half-open ticket
    /// range `[before, after)` the batch occupied — the hook `diffd` uses
    /// to map connection-level request ids onto pipeline tickets.
    #[must_use]
    pub fn next_ticket(&self) -> u64 {
        self.executor.next_ticket()
    }

    /// A point-in-time load snapshot — the admission-control ("shed")
    /// hook. Complements the lock-free `queue_depth`/`in_flight` gauges on
    /// [`Self::observer`]: those can be read without holding the pipeline,
    /// while this reads the executor's exact values.
    #[must_use]
    pub fn load(&self) -> PipelineLoad {
        self.executor.load()
    }

    /// Lifetime supervision totals (see [`SupervisionCounters`]).
    #[must_use]
    pub fn supervision_counters(&self) -> SupervisionCounters {
        self.executor.counters()
    }

    /// The pipeline's [`crate::obs::Observer`], if observability was
    /// enabled via [`DiffPipelineConfig::observe`]. The `Arc` stays valid
    /// after the pipeline is dropped, so snapshots can outlive the pool.
    #[must_use]
    pub fn observer(&self) -> Option<Arc<crate::obs::Observer>> {
        self.executor.observer()
    }

    /// The SIMD level the pool's kernels resolved to (after the env /
    /// config override and the hardware clamp).
    #[must_use]
    pub fn simd_level(&self) -> SimdLevel {
        self.executor.simd_level()
    }

    /// Enqueues one row pair for differencing; returns the [`Ticket`] its
    /// [`RowOutcome`] will carry. Never blocks.
    pub fn submit(&mut self, a: RleRow, b: RleRow) -> Ticket {
        self.streaming.submit_row(a, b)
    }

    /// Blocks for the next completed row, in completion (not submission)
    /// order. Returns `None` when nothing is in flight.
    ///
    /// While blocked, the executor's supervisor keeps watching the pool:
    /// dead workers are respawned and the chunks they held recovered, so a
    /// crashed thread delays rows rather than hanging the collector. Only
    /// a genuinely wedged worker can block indefinitely — use
    /// [`Self::collect_timeout`] to bound that.
    pub fn collect(&mut self) -> Option<RowOutcome> {
        self.streaming
            .collect_next(None)
            .expect("collect without a deadline cannot time out")
    }

    /// Like [`Self::collect`], but gives up with
    /// [`SystolicError::DeadlineExceeded`] if no row completes within
    /// `timeout`. The timed-out rows stay in flight (their worker may still
    /// deliver them later); callers can keep collecting, [`Self::drain`]
    /// the pipeline, or drop it.
    pub fn collect_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<RowOutcome>, SystolicError> {
        self.streaming.collect_next(Some(Instant::now() + timeout))
    }

    /// Collects every in-flight outcome (blocking, with supervision) and
    /// returns them, leaving the pipeline idle.
    pub fn drain(&mut self) -> Vec<RowOutcome> {
        let mut out = Vec::new();
        while let Some(done) = self.collect() {
            out.push(done);
        }
        if let Some(obs) = self.executor.obs() {
            obs.record(TraceKind::Drain {
                collected: out.len() as u64,
            });
        }
        out
    }

    /// Runs the signature prefilter over a batch's rows, if enabled.
    /// `None` means "plan every row" — either the prefilter is off, the
    /// kernel policy demands exact per-row statistics, the adaptive
    /// bypass is engaged (previous batch's skip rate below
    /// [`DiffPipelineConfig::sig_prefilter_min_skip_rate`]), or no row
    /// matched. Records this batch's observed match rate either way so
    /// the next batch adapts.
    fn prefilter(&mut self, a: &RleImage, b: &RleImage) -> Option<SkipPlan> {
        if !self.config.signature_prefilter || self.config.kernel == Kernel::Systolic {
            self.sig_mode = SigPrefilterMode::Off;
            return None;
        }
        let height = a.height();
        let threshold = self.config.sig_prefilter_min_skip_rate;
        if threshold > 0.0 && self.sig_skip_rate.is_some_and(|rate| rate < threshold) {
            // Bypass: the last batch churned too much for skip resolution
            // to pay for itself. Still compare the cached signatures — one
            // u64 equality per row — so the rate stays measured and the
            // prefilter re-arms as soon as the sequence calms down.
            self.sig_mode = SigPrefilterMode::Bypassed;
            let mut matched = 0usize;
            for i in 0..height {
                let matches = a.rows()[i].signature() == b.rows()[i].signature();
                #[cfg(feature = "fault-injection")]
                let matches = matches || self.config.fault_sig_collisions.contains(&i);
                if matches {
                    matched += 1;
                }
            }
            if height > 0 {
                self.sig_skip_rate = Some(matched as f64 / height as f64);
            }
            return None;
        }
        self.sig_mode = SigPrefilterMode::Active;
        let mut plan = SkipPlan {
            resolved: vec![false; height],
            skipped: Vec::new(),
            collisions: Vec::new(),
            inline: Vec::new(),
            max_inline_iterations: 0,
            stats: ArrayStats::default(),
            verified: 0,
        };
        for i in 0..height {
            let (ra, rb) = (&a.rows()[i], &b.rows()[i]);
            let matches = ra.signature() == rb.signature();
            #[cfg(feature = "fault-injection")]
            let matches = matches || self.config.fault_sig_collisions.contains(&i);
            if !matches {
                continue;
            }
            let row_stats = ArrayStats {
                k1: ra.run_count(),
                k2: rb.run_count(),
                ..ArrayStats::default()
            };
            let ordinal = plan.skipped.len() + plan.collisions.len();
            if self.config.verify_signatures && ordinal.is_multiple_of(SIG_VERIFY_SAMPLE) {
                let reference = rle::ops::xor(ra, rb);
                if reference.is_empty() {
                    plan.verified += 1;
                } else {
                    // A 64-bit collision (or an injected one): the skip
                    // would have dropped real differences. Resolve the row
                    // with the reference diff instead — still host-side,
                    // still no kernel, but exact.
                    plan.stats.absorb(&ArrayStats {
                        output_runs: reference.run_count(),
                        ..row_stats
                    });
                    plan.resolved[i] = true;
                    plan.collisions.push((i, reference));
                    continue;
                }
            }
            plan.stats.absorb(&row_stats);
            plan.resolved[i] = true;
            plan.skipped.push(i);
        }
        if height > 0 {
            let matched = plan.skipped.len() + plan.collisions.len();
            self.sig_skip_rate = Some(matched as f64 / height as f64);
        }
        if plan.skipped.is_empty() && plan.collisions.is_empty() {
            None
        } else {
            Some(plan)
        }
    }

    /// Small-batch shortcut after the prefilter: when at most
    /// [`INLINE_RESIDUAL_ROWS`] rows were *not* resolved, diff them here on
    /// the host with the same kernel policy a worker would use. The batch
    /// then plans zero chunks — no enqueue, no wake-up, no collect
    /// handshake — which is what makes low-churn frame diffs cheap instead
    /// of merely parallel. Inline rows join the stats ledger through the
    /// [`SkipPlan`] like collision substitutes do; they never enter the
    /// submit/complete ledgers (nothing was submitted).
    fn inline_residual(
        &mut self,
        a: &RleImage,
        b: &RleImage,
        skip: &mut Option<SkipPlan>,
    ) -> Result<(), SystolicError> {
        let Some(plan) = skip else { return Ok(()) };
        let residual: Vec<usize> = (0..a.height()).filter(|&i| !plan.resolved[i]).collect();
        if residual.is_empty() || residual.len() > INLINE_RESIDUAL_ROWS {
            return Ok(());
        }
        for i in residual {
            let row_start = self.executor.obs().map(|_| Instant::now());
            let (row, row_stats, choice) = kernel::diff_row(
                self.config.kernel,
                &mut self.host_scratch,
                &a.rows()[i],
                &b.rows()[i],
            )?;
            // Mirror a worker's per-row accounting (kernel mix + the two
            // row histograms) under `rows_inline_diffed` instead of
            // `rows_diffed`, keeping both documented ledger identities
            // closed: these rows were never submitted, so they must not
            // appear on the worker/collector side.
            if let Some(obs) = self.executor.obs() {
                let latency_ns = row_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                obs.metrics.rows_inline_diffed.inc();
                match choice {
                    KernelChoice::FastPath => obs.metrics.rows_fast_path.inc(),
                    KernelChoice::Rle => obs.metrics.rows_rle_kernel.inc(),
                    KernelChoice::Packed => obs.metrics.rows_packed_kernel.inc(),
                    KernelChoice::Systolic => obs.metrics.rows_systolic_kernel.inc(),
                }
                obs.metrics.row_latency_ns.record(latency_ns);
                obs.metrics
                    .row_runs
                    .record((row_stats.k1 + row_stats.k2) as u64);
            }
            plan.max_inline_iterations = plan.max_inline_iterations.max(row_stats.iterations);
            plan.stats.absorb(&row_stats);
            plan.resolved[i] = true;
            plan.inline.push((i, row, choice));
        }
        Ok(())
    }

    /// Plans a batch's chunks over every row not already resolved by the
    /// prefilter (see [`plan_ranges`]). Returns the chunk specs plus —
    /// when rows were excluded, so tickets are no longer dense over
    /// `0..height` — the ticket-offset → image-row mapping reassembly
    /// needs.
    fn plan_specs(
        &self,
        a: &RleImage,
        b: &RleImage,
        resolved: Option<&[bool]>,
        make_source: impl Fn(usize, usize) -> RowsSource,
    ) -> (Vec<ChunkSpec>, Option<Vec<usize>>) {
        let ranges = plan_ranges(
            a,
            b,
            resolved,
            self.config.chunk_target,
            self.executor.workers(),
        );
        let ticket_rows = resolved.map(|_| {
            ranges
                .iter()
                .flat_map(|&(lo, hi)| lo..hi)
                .collect::<Vec<usize>>()
        });
        let specs = ranges
            .into_iter()
            .map(|(lo, hi)| ChunkSpec {
                lo,
                hi,
                source: make_source(lo, hi),
            })
            .collect();
        (specs, ticket_rows)
    }

    /// Diffs two images row by row across the pool, reassembling the rows
    /// in order and aggregating per-row statistics. Each input row is
    /// cloned **once** into per-chunk storage (use
    /// [`Self::diff_images_shared`] to avoid even that).
    ///
    /// Bit-identical to [`crate::image::xor_image`] for every kernel
    /// policy. If any row fails, the remaining rows are still drained and
    /// the first error is returned. With a
    /// [`DiffPipelineConfig::row_deadline`] configured, a stall longer than
    /// the deadline aborts the batch with
    /// [`SystolicError::DeadlineExceeded`]; the batch's remaining rows are
    /// abandoned (see [`Self::abandoned`]) and the pipeline is immediately
    /// reusable.
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight (collect them
    /// first; the batch front-end needs an idle pipeline).
    pub fn diff_images(
        &mut self,
        a: &RleImage,
        b: &RleImage,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight() == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let mut skip = self.prefilter(a, b);
        self.inline_residual(a, b, &mut skip)?;
        let (specs, ticket_rows) = self.plan_specs(
            a,
            b,
            skip.as_ref().map(|s| s.resolved.as_slice()),
            |lo, hi| {
                let rows: Vec<(RleRow, RleRow)> = (lo..hi)
                    .map(|i| (a.rows()[i].clone(), b.rows()[i].clone()))
                    .collect();
                RowsSource::Owned {
                    rows: Arc::from(rows),
                    first: lo,
                }
            },
        );
        // The old scheduler cloned each row at submit AND at checkout; the
        // per-chunk copy keeps only the submit-time clone.
        let clones_avoided = 2 * a.height() as u64;
        self.run_batch(
            a.width(),
            a.height(),
            specs,
            ticket_rows,
            skip,
            clones_avoided,
            BatchDeadline::Config,
        )
    }

    /// Zero-copy batch: like [`Self::diff_images`], but the chunks borrow
    /// the caller's images through the `Arc`s, so no row data is cloned at
    /// all — submission cost is independent of image content.
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight.
    pub fn diff_images_shared(
        &mut self,
        a: &Arc<RleImage>,
        b: &Arc<RleImage>,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight() == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let mut skip = self.prefilter(a, b);
        self.inline_residual(a, b, &mut skip)?;
        let (specs, ticket_rows) = self.plan_specs(
            a,
            b,
            skip.as_ref().map(|s| s.resolved.as_slice()),
            |_, _| RowsSource::Shared {
                a: Arc::clone(a),
                b: Arc::clone(b),
            },
        );
        let clones_avoided = 4 * a.height() as u64;
        self.run_batch(
            a.width(),
            a.height(),
            specs,
            ticket_rows,
            skip,
            clones_avoided,
            BatchDeadline::Config,
        )
    }

    /// Zero-copy batch with a **per-call wall-clock budget**: the whole
    /// batch must complete within `budget`, with each collect waiting only
    /// the remaining slice of it. On expiry the batch's job is abandoned
    /// exactly like a [`DiffPipelineConfig::row_deadline`] abort — the
    /// pipeline is immediately idle and reusable, and the wedged rows
    /// surface in [`Self::abandoned`] / the `rows_abandoned` counter.
    ///
    /// This is the per-request deadline hook for network front ends: one
    /// shared pipeline can serve callers with different deadlines without
    /// rebuilding, and a wedged row can never wedge a caller for longer
    /// than its own budget. (`diffd` itself now goes further and submits
    /// sessions concurrently through [`DiffExecutor::diff_pair`].)
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight.
    pub fn diff_images_deadline(
        &mut self,
        a: &Arc<RleImage>,
        b: &Arc<RleImage>,
        budget: Duration,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight() == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let mut skip = self.prefilter(a, b);
        self.inline_residual(a, b, &mut skip)?;
        let (specs, ticket_rows) = self.plan_specs(
            a,
            b,
            skip.as_ref().map(|s| s.resolved.as_slice()),
            |_, _| RowsSource::Shared {
                a: Arc::clone(a),
                b: Arc::clone(b),
            },
        );
        let clones_avoided = 4 * a.height() as u64;
        self.run_batch(
            a.width(),
            a.height(),
            specs,
            ticket_rows,
            skip,
            clones_avoided,
            BatchDeadline::Total(Instant::now() + budget),
        )
    }

    /// Common batch engine: submit the planned chunks as one job, collect
    /// every row, reassemble in ticket order and aggregate statistics.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &mut self,
        width: u32,
        height: usize,
        specs: Vec<ChunkSpec>,
        ticket_rows: Option<Vec<usize>>,
        skip: Option<SkipPlan>,
        clones_avoided: u64,
        deadline: BatchDeadline,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        let start = Instant::now();
        let resolved_rows = skip
            .as_ref()
            .map_or(0, |s| s.skipped.len() + s.collisions.len() + s.inline.len());
        let mut stats = PipelineStats {
            workers: self.executor.workers(),
            chunks: specs.len(),
            row_clones_avoided: clones_avoided,
            sig_prefilter: self.sig_mode,
            ..Default::default()
        };
        if let Some(plan) = &skip {
            // Host-resolved rows join the batch's row and ArrayStats
            // ledgers here; they never touch the submit/complete ledgers
            // (nothing was submitted for them).
            stats.rows += resolved_rows;
            stats.rows_sig_skipped = plan.skipped.len();
            stats.sig_verified = plan.verified;
            stats.sig_collisions = plan.collisions.len();
            stats.totals.absorb(&plan.stats);
            stats.max_row_iterations = plan.max_inline_iterations;
            for (_, _, choice) in &plan.inline {
                match choice {
                    KernelChoice::FastPath => stats.rows_fast_path += 1,
                    KernelChoice::Rle => stats.rows_rle_kernel += 1,
                    KernelChoice::Packed => stats.rows_packed_kernel += 1,
                    KernelChoice::Systolic => stats.rows_systolic_kernel += 1,
                }
            }
        }
        if let Some(obs) = self.executor.obs() {
            if let Some(plan) = &skip {
                obs.metrics.rows_sig_skipped.add(plan.skipped.len() as u64);
                for &row in &plan.skipped {
                    obs.record(TraceKind::SigSkip { row: row as u64 });
                }
            }
        }
        let handle = self.executor.submit_job(specs);
        let base = handle.tickets().0;

        let mut rows: Vec<Option<RleRow>> = vec![None; height];
        if let Some(plan) = skip {
            for &row in &plan.skipped {
                rows[row] = Some(RleRow::new(width));
            }
            for (row, diff) in plan.collisions {
                rows[row] = Some(diff);
            }
            for (row, diff, _) in plan.inline {
                rows[row] = Some(diff);
            }
        }
        let mut first_err: Option<SystolicError> = None;
        loop {
            // The per-collect deadline restarts each iteration (the old
            // `collect_timeout` semantics); a total budget is a fixed
            // instant.
            let collect_deadline = match deadline {
                BatchDeadline::Config => self.config.row_deadline.map(|t| Instant::now() + t),
                BatchDeadline::Total(at) => Some(at),
            };
            let done = match handle.collect_next(collect_deadline) {
                Ok(Some(done)) => done,
                Ok(None) => break,
                Err(e) => {
                    handle.abandon();
                    return Err(e);
                }
            };
            match done.result {
                Ok((row, row_stats)) => {
                    stats.totals.absorb(&row_stats);
                    stats.max_row_iterations = stats.max_row_iterations.max(row_stats.iterations);
                    stats.rows += 1;
                    match done.kernel {
                        Some(KernelChoice::FastPath) => stats.rows_fast_path += 1,
                        Some(KernelChoice::Rle) => stats.rows_rle_kernel += 1,
                        Some(KernelChoice::Packed) => stats.rows_packed_kernel += 1,
                        Some(KernelChoice::Systolic) => stats.rows_systolic_kernel += 1,
                        None => {}
                    }
                    let offset = usize::try_from(done.ticket.id() - base).expect("ticket fits");
                    let idx = ticket_rows.as_ref().map_or(offset, |tr| tr[offset]);
                    rows[idx] = Some(row);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Supervision attribution comes from the job itself, so stats are
        // exact even when other jobs interleave on the same executor (the
        // old global-counter deltas misattributed those).
        handle.fill_supervision(&mut stats);
        stats.wall = start.elapsed();
        let rows: Vec<RleRow> = rows
            .into_iter()
            .map(|r| r.expect("every row collected"))
            .collect();
        let image = RleImage::from_rows(width, rows).expect("row widths preserved");
        Ok((image, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::xor_image;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn batch_matches_sequential_reference() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();

        // The systolic kernel reproduces the reference machine's stats
        // exactly — same per-row iteration counts, same totals.
        let mut exact = DiffPipelineConfig::new(3).kernel(Kernel::Systolic).build();
        let (got, stats) = exact.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.totals.iterations, seq_stats.totals.iterations);
        assert_eq!(stats.max_row_iterations, seq_stats.max_row_iterations);
        assert_eq!(stats.rows_systolic_kernel, 4);
        assert_eq!(stats.workers, 3);
        assert!(stats.effective_workers >= 1 && stats.effective_workers <= 3);
        // A healthy run needs no supervisor interventions.
        assert_eq!((stats.retries, stats.respawns, stats.timeouts), (0, 0, 0));
        assert_eq!(exact.supervision_counters(), SupervisionCounters::default());

        // The default hybrid kernel is bit-identical with cheaper stats.
        let mut pipeline = DiffPipeline::new(3);
        let (hybrid, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(hybrid, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(
            stats.rows_fast_path
                + stats.rows_rle_kernel
                + stats.rows_packed_kernel
                + stats.rows_systolic_kernel,
            4,
            "every row's kernel choice is recorded"
        );
        assert!(stats.totals.within_theorem1());
        assert!(stats.chunks >= 1);
        assert_eq!(stats.row_clones_avoided, 8);
    }

    #[test]
    fn shared_batch_is_zero_copy_and_identical() {
        let a = Arc::new(img("####....\n..##..##\n........\n#.#.#.#.\n"));
        let b = Arc::new(img("####....\n..##..#.\n...##...\n.#.#.#.#\n"));
        let mut pipeline = DiffPipeline::new(2);
        let (owned, _) = pipeline.diff_images(&a, &b).unwrap();
        let (shared, stats) = pipeline.diff_images_shared(&a, &b).unwrap();
        assert_eq!(owned, shared);
        assert_eq!(stats.row_clones_avoided, 16, "4 clones avoided per row");
        assert_eq!(stats.rows, 4);
    }

    #[test]
    fn forced_kernels_are_bit_identical() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, _) = xor_image(&a, &b).unwrap();
        for kernel in [Kernel::Rle, Kernel::Packed] {
            let mut pipeline = DiffPipelineConfig::new(2).kernel(kernel).build();
            let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
            assert_eq!(got, seq, "{kernel:?}");
            match kernel {
                Kernel::Rle => assert_eq!(stats.rows_rle_kernel, 4),
                Kernel::Packed => assert_eq!(stats.rows_packed_kernel, 4),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn forced_simd_levels_are_bit_identical() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, _) = xor_image(&a, &b).unwrap();
        for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            let mut pipeline = DiffPipelineConfig::new(2)
                .kernel(Kernel::Packed)
                .simd(level)
                .build();
            // An unsupported request clamps down instead of failing.
            assert!(pipeline.simd_level() <= SimdLevel::detect());
            let (got, _) = pipeline.diff_images(&a, &b).unwrap();
            assert_eq!(got, seq, "{level}");
        }
    }

    #[test]
    fn chunk_target_controls_scheduling_granularity() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        // A huge target packs the whole image into one chunk...
        let mut coarse = DiffPipelineConfig::new(2).chunk_target(1_000_000).build();
        let (_, stats) = coarse.diff_images(&a, &b).unwrap();
        assert_eq!(stats.chunks, 1);
        // ...a target of one run forces per-row chunks.
        let mut fine = DiffPipelineConfig::new(2).chunk_target(1).build();
        let (_, stats) = fine.diff_images(&a, &b).unwrap();
        assert_eq!(stats.chunks, 4);
    }

    #[test]
    fn derived_chunk_plan_feeds_every_worker() {
        // One pathologically heavy row used to swallow the whole derived
        // weight target, leaving fewer chunks than workers and most of the
        // pool idle; the plan must split until every worker can get a
        // chunk.
        let width = 4096u32;
        let heavy: Vec<(u32, u32)> = (0..512).map(|i| (i * 8, 3)).collect();
        let mut rows = vec![RleRow::from_pairs(width, &heavy).unwrap()];
        for _ in 0..7 {
            rows.push(RleRow::new(width));
        }
        let a = RleImage::from_rows(width, rows).unwrap();
        let b = RleImage::new(width, 8);
        let mut pipeline = DiffPipeline::new(4);
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert!(
            stats.chunks >= 4,
            "derived plan must feed all 4 workers: {stats:?}"
        );
        // An image shorter than the pool caps at one chunk per row.
        let a = img("####....\n..##..##\n");
        let b = img("####....\n..##..#.\n");
        let (_, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(stats.chunks, 2);
    }

    #[test]
    fn result_buffers_are_recycled_across_batches() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(1).chunk_target(1).build();
        let (_, _first) = pipeline.diff_images(&a, &b).unwrap();
        let (_, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert!(
            stats.buffers_reused > 0,
            "second batch must hit the recycling pool: {stats:?}"
        );
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let a = img("##..##..\n.######.\n");
        let b = img("##.###..\n.#....#.\n");
        let mut pipeline = DiffPipeline::new(2);
        let (first, _) = pipeline.diff_images(&a, &b).unwrap();
        let (second, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(first, second);
        let (identity, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(identity.ones(), 0);
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.rows_fast_path, 2, "equal rows take the fast path");
    }

    #[test]
    fn streaming_submit_collect_round_trip() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipeline::new(2);
        let tickets: Vec<Ticket> = a
            .rows()
            .iter()
            .zip(b.rows())
            .map(|(ra, rb)| pipeline.submit(ra.clone(), rb.clone()))
            .collect();
        assert_eq!(pipeline.in_flight(), 3);

        let mut rows: Vec<Option<RleRow>> = vec![None; 3];
        while let Some(done) = pipeline.collect() {
            let slot = tickets.iter().position(|t| *t == done.ticket).unwrap();
            rows[slot] = Some(done.result.unwrap().0);
        }
        assert_eq!(pipeline.in_flight(), 0);
        let (expected, _) = xor_image(&a, &b).unwrap();
        for (slot, row) in rows.into_iter().enumerate() {
            assert_eq!(row.unwrap(), expected.rows()[slot]);
        }
    }

    #[test]
    fn row_error_is_reported_and_pipeline_survives() {
        let mut pipeline = DiffPipeline::new(2);
        let good = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        let bad = RleRow::new(8); // width mismatch against `good`
        pipeline.submit(good.clone(), bad);
        let outcome = pipeline.collect().unwrap();
        assert!(outcome.result.is_err());
        assert_eq!(outcome.kernel, None, "no kernel ran for the bad row");
        // The pool still works after the failure.
        pipeline.submit(good.clone(), good.clone());
        let ok = pipeline.collect().unwrap();
        assert!(ok.result.unwrap().0.is_empty());
    }

    #[test]
    fn empty_image_batch() {
        let a = RleImage::new(32, 0);
        let mut pipeline = DiffPipeline::new(2);
        let (d, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(d.height(), 0);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.effective_workers, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pipeline = DiffPipeline::new(2);
        let a = RleImage::new(8, 2);
        assert!(pipeline.diff_images(&a, &RleImage::new(9, 2)).is_err());
        assert!(pipeline.diff_images(&a, &RleImage::new(8, 3)).is_err());
        // Failed dimension checks leave nothing in flight.
        assert_eq!(pipeline.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_workers_panics() {
        let _ = DiffPipeline::new(0);
    }

    #[test]
    fn config_defaults_and_builders() {
        let config = DiffPipelineConfig::default();
        assert!(config.threads >= 1);
        assert_eq!(config.retry_limit, 2);
        assert!(config.row_deadline.is_none());
        assert_eq!(config.kernel, Kernel::Auto);
        assert_eq!(config.simd, None, "SIMD level is auto-detected");
        assert_eq!(config.chunk_target, None);
        assert_eq!(config.observe, None, "observability is opt-in");
        let config = DiffPipelineConfig::new(2)
            .retry_limit(5)
            .row_deadline(Duration::from_millis(250))
            .shutdown_grace(Duration::from_millis(100))
            .kernel(Kernel::Packed)
            .simd(SimdLevel::Scalar)
            .chunk_target(64);
        assert_eq!(config.threads, 2);
        assert_eq!(config.retry_limit, 5);
        assert_eq!(config.row_deadline, Some(Duration::from_millis(250)));
        assert_eq!(config.shutdown_grace, Duration::from_millis(100));
        assert_eq!(config.kernel, Kernel::Packed);
        assert_eq!(config.simd, Some(SimdLevel::Scalar));
        assert_eq!(config.chunk_target, Some(64));
        let pipeline = config.build();
        assert_eq!(pipeline.workers(), 2);
        assert_eq!(pipeline.simd_level(), SimdLevel::Scalar);
        assert_eq!(pipeline.abandoned(), 0);
    }

    #[test]
    fn observed_pipeline_records_a_consistent_snapshot() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let unobserved = DiffPipeline::new(2);
        assert!(unobserved.observer().is_none(), "off by default");

        let mut pipeline = DiffPipelineConfig::new(2).observe().build();
        let obs = pipeline.observer().expect("observer attached");
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);

        let snapshot = obs.metrics_snapshot();
        assert_eq!(snapshot.batches, 1);
        assert_eq!(snapshot.rows_submitted, 4);
        assert_eq!(snapshot.rows_completed, 4);
        assert_eq!(snapshot.rows_diffed, 4, "no faults: one diff per row");
        assert_eq!(snapshot.kernel_rows(), 4);
        assert_eq!(snapshot.rows_fast_path, stats.rows_fast_path as u64);
        assert_eq!(snapshot.chunks_dispatched, stats.chunks as u64);
        assert_eq!(snapshot.chunks_completed, stats.chunks as u64);
        assert_eq!(snapshot.row_latency_ns.count, 4);
        assert_eq!(snapshot.row_runs.count, 4);
        assert_eq!((snapshot.queue_depth, snapshot.in_flight), (0, 0));
        // Trace carries the full causal story: 4 submits, a checkout and a
        // chunk-done per chunk, one kernel event per row.
        let events = obs.trace_snapshot();
        let count = |pred: fn(&TraceKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, TraceKind::Submit { .. })), 4);
        assert_eq!(count(|k| matches!(k, TraceKind::Kernel { .. })), 4);
        assert_eq!(
            count(|k| matches!(k, TraceKind::Checkout { .. })),
            stats.chunks
        );
        assert_eq!(
            count(|k| matches!(k, TraceKind::ChunkDone { .. })),
            stats.chunks
        );
    }

    #[test]
    fn collect_timeout_on_healthy_pipeline_returns_rows() {
        let mut pipeline = DiffPipeline::new(2);
        assert!(matches!(
            pipeline.collect_timeout(Duration::from_millis(10)),
            Ok(None),
        ));
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        pipeline.submit(row.clone(), row);
        let got = pipeline
            .collect_timeout(Duration::from_secs(10))
            .expect("healthy worker beats a generous deadline")
            .expect("one row in flight");
        assert!(got.result.unwrap().0.is_empty());
    }

    #[test]
    fn drain_empties_the_pipeline() {
        let mut pipeline = DiffPipeline::new(2);
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        for _ in 0..5 {
            pipeline.submit(row.clone(), row.clone());
        }
        let outcomes = pipeline.drain();
        assert_eq!(outcomes.len(), 5);
        assert_eq!(pipeline.in_flight(), 0);
        assert!(pipeline.drain().is_empty());
    }

    #[test]
    fn batch_deadline_passes_when_workers_are_healthy() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(2)
            .row_deadline(Duration::from_secs(10))
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn per_call_deadline_batch_matches_reference_and_maps_tickets() {
        let a = Arc::new(img("####....\n..##..##\n#.#.#.#.\n"));
        let b = Arc::new(img("###.....\n..##..#.\n.#.#.#.#\n"));
        let mut pipeline = DiffPipeline::new(2);
        assert_eq!(pipeline.next_ticket(), 0);
        let lo = pipeline.next_ticket();
        let (got, _) = pipeline
            .diff_images_deadline(&a, &b, Duration::from_secs(10))
            .unwrap();
        let hi = pipeline.next_ticket();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        // One ticket per row, allocated contiguously for the batch.
        assert_eq!(hi - lo, a.height() as u64);
        // Different budgets per call on the same pool, no rebuild.
        let (again, _) = pipeline
            .diff_images_deadline(&a, &b, Duration::from_secs(1))
            .unwrap();
        assert_eq!(again, got);
        assert_eq!(pipeline.next_ticket(), hi + a.height() as u64);
    }

    #[test]
    fn load_snapshot_reports_an_idle_pool() {
        let a = img("####....\n..##..##\n");
        let b = img("###.....\n..##..#.\n");
        let mut pipeline = DiffPipeline::new(2);
        pipeline.diff_images(&a, &b).unwrap();
        let load = pipeline.load();
        assert_eq!(load.queued_chunks, 0);
        assert_eq!(load.ready_chunks, 0);
        assert_eq!(load.in_flight_rows, 0);
        assert_eq!(load.abandoned_rows, 0);
    }

    #[test]
    fn signature_prefilter_skips_matching_rows() {
        // Rows 0 and 2 are identical between the images; rows 1 and 3
        // differ. With the prefilter on, the identical rows resolve
        // host-side and the rest still go through kernels — bit-identical
        // either way.
        let a = img("####....\n..##..##\n.#.#.#.#\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n.#.#.#.#\n.#.#.#.#\n");
        let (seq, _) = xor_image(&a, &b).unwrap();
        // Threshold 0.0 pins the prefilter active: this test exercises the
        // skip mechanics across all three front-ends, not the adaptive
        // bypass (see `adaptive_prefilter_bypasses_and_rearms`), and a 0.5
        // skip rate would otherwise trip the default threshold.
        let mut pipeline = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .sig_prefilter_min_skip_rate(0.0)
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.rows_sig_skipped, 2);
        assert_eq!(stats.sig_prefilter, SigPrefilterMode::Active);
        assert_eq!(stats.sig_collisions, 0);
        let kernel_rows = stats.rows_fast_path
            + stats.rows_rle_kernel
            + stats.rows_packed_kernel
            + stats.rows_systolic_kernel;
        assert_eq!(kernel_rows, 2, "only the changed rows reach a kernel");
        // Skipped rows still contribute their input sizes to the totals.
        assert_eq!(stats.totals.k1, a.total_runs());
        assert_eq!(stats.totals.k2, b.total_runs());

        // Shared and deadline front-ends agree.
        let (a, b) = (Arc::new(a), Arc::new(b));
        let (shared, shared_stats) = pipeline.diff_images_shared(&a, &b).unwrap();
        assert_eq!(shared, seq);
        assert_eq!(shared_stats.rows_sig_skipped, 2);
        let (deadlined, deadline_stats) = pipeline
            .diff_images_deadline(&a, &b, Duration::from_secs(10))
            .unwrap();
        assert_eq!(deadlined, seq);
        assert_eq!(deadline_stats.rows_sig_skipped, 2);
    }

    #[test]
    fn adaptive_prefilter_bypasses_and_rearms() {
        // Two image pairs: `hot` churns every row (skip rate 0), `cold`
        // changes nothing (skip rate 1). Under the default threshold the
        // prefilter must run the first batch, stand aside after observing
        // the churn, keep measuring while bypassed, and re-arm one batch
        // after the sequence calms down — bit-identical output throughout.
        let base = img("####....\n..##..##\n.#.#.#.#\n#.#.#.#.\n");
        let hot = img("...####.\n##..##..\n#.#.#.#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(2).signature_prefilter().build();

        // Batch 1: no history yet, so the prefilter runs (and finds
        // nothing to skip — every row differs).
        let (hot_seq, _) = xor_image(&base, &hot).unwrap();
        let (got, stats) = pipeline.diff_images(&base, &hot).unwrap();
        assert_eq!(got, hot_seq);
        assert_eq!(stats.sig_prefilter, SigPrefilterMode::Active);
        assert_eq!(stats.rows_sig_skipped, 0);

        // Batch 2: the observed rate (0.0) is below the threshold, so the
        // prefilter bypasses — even though this batch is all-identical and
        // would have skipped every row. Output must still be exact.
        let (got, stats) = pipeline.diff_images(&base, &base).unwrap();
        assert!(got.rows().iter().all(RleRow::is_empty));
        assert_eq!(stats.sig_prefilter, SigPrefilterMode::Bypassed);
        assert_eq!(stats.rows_sig_skipped, 0, "bypassed batches skip nothing");
        let kernel_rows = stats.rows_fast_path
            + stats.rows_rle_kernel
            + stats.rows_packed_kernel
            + stats.rows_systolic_kernel;
        assert_eq!(
            kernel_rows, 4,
            "every row reaches the kernels while bypassed"
        );

        // Batch 3: the bypassed batch still measured (rate 1.0), so the
        // prefilter re-arms and resolves every matching row host-side.
        let (got, stats) = pipeline.diff_images(&base, &base).unwrap();
        assert!(got.rows().iter().all(RleRow::is_empty));
        assert_eq!(stats.sig_prefilter, SigPrefilterMode::Active);
        assert_eq!(stats.rows_sig_skipped, 4);

        // And back: a hot batch under an active prefilter records its own
        // low rate, dropping the *next* batch into bypass again.
        let (got, stats) = pipeline.diff_images(&base, &hot).unwrap();
        assert_eq!(got, hot_seq);
        assert_eq!(stats.sig_prefilter, SigPrefilterMode::Active);
        let (_, stats) = pipeline.diff_images(&base, &hot).unwrap();
        assert_eq!(stats.sig_prefilter, SigPrefilterMode::Bypassed);
    }

    #[test]
    fn adaptive_prefilter_threshold_zero_never_bypasses() {
        let base = img("####....\n..##..##\n.#.#.#.#\n#.#.#.#.\n");
        let hot = img("...####.\n##..##..\n#.#.#.#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .sig_prefilter_min_skip_rate(0.0)
            .build();
        for _ in 0..3 {
            let (_, stats) = pipeline.diff_images(&base, &hot).unwrap();
            assert_eq!(stats.sig_prefilter, SigPrefilterMode::Active);
        }
    }

    #[test]
    fn small_residuals_are_diffed_inline_without_dispatch() {
        // 40 rows, 3 changed: far under INLINE_RESIDUAL_ROWS, so the batch
        // plans zero chunks, diffs the leftovers host-side, and the inline
        // ledger (not the worker ledger) carries them.
        let width = 256u32;
        let rows: Vec<RleRow> = (0..40)
            .map(|y: u32| RleRow::from_pairs(width, &[(y % 32, 5)]).unwrap())
            .collect();
        let a = RleImage::from_rows(width, rows.clone()).unwrap();
        let mut rows_b = rows;
        for y in [3usize, 17, 38] {
            rows_b[y] = RleRow::from_pairs(width, &[(y as u32 % 32 + 64, 5)]).unwrap();
        }
        let b = RleImage::from_rows(width, rows_b).unwrap();
        let (seq, _) = xor_image(&a, &b).unwrap();
        let mut pipeline = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .observe()
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows, 40);
        assert_eq!(stats.rows_sig_skipped, 37);
        assert_eq!(stats.chunks, 0, "small residuals must not dispatch");
        let kernel_rows = stats.rows_fast_path
            + stats.rows_rle_kernel
            + stats.rows_packed_kernel
            + stats.rows_systolic_kernel;
        assert_eq!(kernel_rows, 3, "inline rows keep their kernel accounting");
        let s = pipeline.observer().unwrap().metrics_snapshot();
        assert_eq!(s.rows_inline_diffed, 3);
        assert_eq!(s.rows_submitted, 0, "nothing entered the pool");
        assert_eq!(s.rows_diffed, 0, "no worker ran");
        assert_eq!(s.row_latency_ns.count, 3);
        assert_eq!(s.row_runs.count, 3);
        assert_eq!(s.kernel_rows(), 3);

        // A residual above the cap still goes through the pool.
        let mut rows_c = a.rows().to_vec();
        for (y, row) in rows_c.iter_mut().enumerate().take(INLINE_RESIDUAL_ROWS + 4) {
            *row = RleRow::from_pairs(width, &[(y as u32 + 100, 7)]).unwrap();
        }
        let c = RleImage::from_rows(width, rows_c).unwrap();
        let (seq_ac, _) = xor_image(&a, &c).unwrap();
        let (got_ac, stats_ac) = pipeline.diff_images(&a, &c).unwrap();
        assert_eq!(got_ac, seq_ac);
        assert!(stats_ac.chunks > 0, "large residuals still dispatch");
        let s2 = pipeline.observer().unwrap().metrics_snapshot();
        assert_eq!(s2.rows_inline_diffed, 3, "inline count unchanged");
        assert_eq!(
            s2.rows_diffed,
            (INLINE_RESIDUAL_ROWS + 4) as u64,
            "the second batch's residual ran on workers"
        );
    }

    #[test]
    fn signature_prefilter_handles_fully_identical_images() {
        let a = Arc::new(img("####....\n..##..##\n.#.#.#.#\n"));
        let b = Arc::new((*a).clone());
        let mut pipeline = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .observe()
            .build();
        let (diff, stats) = pipeline.diff_images_shared(&a, &b).unwrap();
        assert!(diff.rows().iter().all(RleRow::is_empty));
        assert_eq!(diff.height(), 3);
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.rows_sig_skipped, 3);
        assert_eq!(stats.chunks, 0, "nothing left to plan");
        // Skipped rows never enter the submit/complete ledgers; the metric
        // and trace event carry them instead.
        let snapshot = pipeline.observer().unwrap().metrics_snapshot();
        assert_eq!(snapshot.rows_submitted, 0);
        assert_eq!(snapshot.rows_completed, 0);
        assert_eq!(snapshot.rows_sig_skipped, 3);
        let events = pipeline.observer().unwrap().trace_snapshot();
        let skips = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::SigSkip { .. }))
            .count();
        assert_eq!(skips, 3);
        // The pipeline is idle and immediately reusable.
        assert_eq!(pipeline.in_flight(), 0);
        let (again, _) = pipeline.diff_images_shared(&a, &b).unwrap();
        assert_eq!(again, diff);
    }

    #[test]
    fn signature_prefilter_respects_non_canonical_encodings() {
        // The same bitstring encoded canonically on one side and as split
        // adjacent runs on the other: signatures match (canonical-view
        // hashing), so the row is skipped — and that is *correct*, because
        // the XOR of equal content is empty however it is encoded.
        let wide = 64u32;
        let canonical = RleRow::from_pairs(wide, &[(3, 6)]).unwrap();
        let split = RleRow::from_pairs(wide, &[(3, 4), (7, 2)]).unwrap();
        let changed_a = RleRow::from_pairs(wide, &[(0, 2)]).unwrap();
        let changed_b = RleRow::from_pairs(wide, &[(1, 2)]).unwrap();
        let a = RleImage::from_rows(wide, vec![canonical, changed_a]).unwrap();
        let b = RleImage::from_rows(wide, vec![split, changed_b]).unwrap();
        let (seq, _) = xor_image(&a, &b).unwrap();
        let mut pipeline = DiffPipelineConfig::new(2).signature_prefilter().build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows_sig_skipped, 1);
    }

    #[test]
    fn verify_signatures_confirms_clean_skips() {
        let a = img("####....\n..##..##\n.#.#.#.#\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n.#.#.#.#\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .verify_signatures()
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_eq!(stats.rows_sig_skipped, 2);
        assert_eq!(stats.sig_verified, 1, "first skip of the batch sampled");
        assert_eq!(stats.sig_collisions, 0);
    }

    #[test]
    fn systolic_kernel_bypasses_the_prefilter() {
        // Kernel::Systolic promises cycle-exact per-row statistics against
        // the reference machine; the prefilter must stand aside.
        let a = img("####....\n..##..##\n");
        let b = img("####....\n..##..#.\n");
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();
        let mut pipeline = DiffPipelineConfig::new(2)
            .kernel(Kernel::Systolic)
            .signature_prefilter()
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows_sig_skipped, 0);
        assert_eq!(stats.rows_systolic_kernel, 2);
        assert_eq!(stats.totals.iterations, seq_stats.totals.iterations);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_collision_is_caught_by_paranoid_mode() {
        // Force the prefilter to believe row 0's signatures match even
        // though the rows differ — a synthetic 64-bit collision. Without
        // verification the diff silently loses row 0's differences; with
        // it, the sampled cross-check substitutes the reference diff.
        let a = img("####....\n..##..##\n");
        let b = img("...####.\n..##..##\n");
        let (seq, _) = xor_image(&a, &b).unwrap();

        let mut unchecked = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .fault_sig_collisions(vec![0])
            .build();
        let (wrong, stats) = unchecked.diff_images(&a, &b).unwrap();
        assert_ne!(wrong, seq, "the forced false skip drops row 0's diff");
        assert!(wrong.rows()[0].is_empty());
        assert_eq!(stats.rows_sig_skipped, 2);

        let mut paranoid = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .verify_signatures()
            .fault_sig_collisions(vec![0])
            .build();
        let (got, stats) = paranoid.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq, "verification restores exactness");
        assert_eq!(stats.sig_collisions, 1);
        assert_eq!(stats.rows_sig_skipped, 1, "row 1's genuine skip remains");
    }
}
