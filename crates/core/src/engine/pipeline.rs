//! Image-level diff pipeline: a supervised, persistent worker pool over
//! whole images, scheduling zero-copy row chunks through an adaptive
//! kernel.
//!
//! [`crate::engine::parallel`] parallelises *within* one row by splitting
//! the cell array across threads, paying thread-spawn and three barriers
//! per row. For whole images the natural unit of parallelism is the row
//! pair itself — rows are independent, so a pool of workers can each diff
//! its own rows, exactly like a rack of systolic chips scanning different
//! board regions.
//!
//! [`DiffPipeline`] spawns its workers **once** and reuses them across
//! calls. Three layers keep the hot path lean:
//!
//! * **Zero-copy submission.** Batch jobs reference the input images
//!   through `Arc`s ([`DiffPipeline::diff_images_shared`] shares the
//!   caller's images outright; [`DiffPipeline::diff_images`] clones each
//!   row once into per-chunk storage, instead of the old twice-per-submit
//!   plus twice-per-checkout). Checking a job out for supervision clones an
//!   `Arc`, never row data.
//! * **Batched, cost-aware scheduling.** The scheduler splits the image
//!   into contiguous row chunks weighted by per-row run counts (target
//!   `~total_runs / (threads * 4)` runs per chunk, overridable via
//!   [`DiffPipelineConfig::chunk_target`]), so channel traffic and
//!   checkout-map churn are amortised over many rows while the tail still
//!   load-balances. Chunk result vectors are recycled through a pool.
//! * **Adaptive kernels.** Each worker diffs rows through
//!   [`crate::engine::kernel::diff_row`] on per-worker reusable scratch
//!   ([`KernelScratch`]): trivial rows short-circuit, sparse rows take the
//!   `Θ(k1 + k2)` RLE merge, dense rows the word-packed XOR, and
//!   [`Kernel::Systolic`] forces the paper's cycle-accurate machine.
//!
//! Two front-ends are provided: the batch API above, and streaming
//! [`DiffPipeline::submit`] / [`DiffPipeline::collect`] that feed row pairs
//! as they arrive (e.g. from a scanner head), matching each result to its
//! [`Ticket`].
//!
//! # Supervision
//!
//! The pool is built for the continuous-inspection service the paper
//! targets, where one crashed row must not take down the line. The *chunk*
//! is the checkout and retry unit; every row inside it keeps its own
//! ticket, so per-row fault accounting (and the deterministic
//! [`FaultPlan`]) is unchanged from PR 2:
//!
//! * **Caught panics.** Each row runs inside `catch_unwind`; a panicking
//!   row discards the worker's (possibly corrupt) kernel state and its
//!   whole chunk is re-enqueued, up to [`DiffPipelineConfig::retry_limit`]
//!   extra attempts. A chunk that keeps crashing fails only the culprit row
//!   (as a structured [`SystolicError::RowFailed`]); the sibling rows are
//!   re-queued as smaller chunks.
//! * **Dead workers.** Every chunk is *checked out* in shared state while a
//!   worker holds it. The collector doubles as a supervisor: it wakes on a
//!   short tick, notices worker threads that exited without being asked to
//!   shut down, respawns them, and re-enqueues the chunks they had checked
//!   out onto the surviving workers.
//! * **Stalls and deadlines.** [`DiffPipeline::collect_timeout`] (and the
//!   per-row deadline of [`DiffPipelineConfig::row_deadline`], honoured by
//!   the batch front-ends) bounds how long a wedged worker can hold the
//!   caller, returning [`SystolicError::DeadlineExceeded`] instead of
//!   hanging. Dropping the pipeline never deadlocks: workers get
//!   [`DiffPipelineConfig::shutdown_grace`] to exit, after which wedged
//!   threads are detached instead of joined.
//!
//! All lock handling is poison-tolerant (`PoisonError::into_inner`): a
//! panic while a lock is held degrades into a recovered guard, not a
//! cascading crash. Retries, respawns and deadline expiries are counted in
//! [`PipelineStats`] (per batch) and [`DiffPipeline::supervision_counters`]
//! (pipeline lifetime), alongside per-kernel row counts and the
//! allocations the zero-copy path avoided.
//!
//! Results are bit-identical to the sequential reference
//! ([`crate::image::xor_image`]) for every kernel policy; only scheduling
//! and the per-row algorithm change. The test-suite asserts this across
//! all engines, all kernels and across injected faults.

use crate::engine::kernel::{self, Kernel, KernelChoice, KernelScratch};
use crate::error::SystolicError;
use crate::image::check_dims;
use crate::obs::{ObsConfig, Observer, TraceKind};
use crate::stats::{ArrayStats, PipelineStats};
use rle::{RleImage, RleRow};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use crate::engine::fault::{Fault, FaultPlan};

/// How often a blocked collector wakes to check worker liveness.
const SUPERVISION_TICK: Duration = Duration::from_millis(20);

/// The scheduler aims for this many chunks per worker, so stragglers can
/// steal the tail of the image without per-row channel traffic.
const CHUNKS_PER_WORKER: usize = 4;

/// At most this many spare chunk-result vectors are kept for reuse.
const SPARE_POOL_CAP: usize = 64;

/// Identifies one submitted row pair; returned by [`DiffPipeline::submit`]
/// and echoed by [`DiffPipeline::collect`] so streaming callers can match
/// results (which complete out of order) to submissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The submission sequence number (0 for the first row ever submitted).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One completed row diff, as handed back by [`DiffPipeline::collect`].
#[derive(Debug)]
pub struct RowOutcome {
    /// Which submission this result answers.
    pub ticket: Ticket,
    /// Index of the pool worker that processed the row (for utilization
    /// accounting; see [`PipelineStats::effective_workers`]).
    pub worker: usize,
    /// Which kernel diffed the row; `None` when the row errored before a
    /// kernel could run (or was failed by the supervisor).
    pub kernel: Option<KernelChoice>,
    /// The diff row and its per-row statistics, or the error for this row
    /// pair.
    pub result: Result<(RleRow, ArrayStats), SystolicError>,
}

/// Configuration for a supervised [`DiffPipeline`].
#[derive(Clone, Debug)]
pub struct DiffPipelineConfig {
    /// Worker threads in the pool (must be > 0).
    pub threads: usize,
    /// Extra attempts the supervisor grants a chunk whose worker panicked
    /// or died. A chunk is attempted at most `retry_limit + 1` times before
    /// its culprit row surfaces as [`SystolicError::RowFailed`].
    pub retry_limit: u32,
    /// Per-row collection deadline honoured by the batch front-ends: the
    /// longest they wait for the *next* completed chunk before giving up
    /// with [`SystolicError::DeadlineExceeded`]. `None` (the default) waits
    /// indefinitely (supervision still recovers dead workers; only genuine
    /// stalls can block).
    pub row_deadline: Option<Duration>,
    /// How long [`Drop`] waits for workers to exit before detaching wedged
    /// threads instead of joining them (the never-deadlock guarantee).
    pub shutdown_grace: Duration,
    /// Kernel policy workers diff rows with (default [`Kernel::Auto`]).
    pub kernel: Kernel,
    /// Target scheduling weight per chunk, measured in input runs (each row
    /// weighs `k1 + k2 + 1`). `None` (the default) derives it from the
    /// batch: `total_weight / (threads * 4)`, clamped to at least one row.
    pub chunk_target: Option<usize>,
    /// Observability: `Some` attaches an [`Observer`] (metrics registry +
    /// trace ring) to the pipeline. `None` (the default) compiles every
    /// recording site down to one predictable `if let` branch — no
    /// timestamps are taken and nothing is recorded.
    pub observe: Option<ObsConfig>,
    /// Deterministic fault schedule for tests (see
    /// [`crate::engine::fault`]).
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DiffPipelineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            retry_limit: 2,
            row_deadline: None,
            shutdown_grace: Duration::from_millis(500),
            kernel: Kernel::Auto,
            chunk_target: None,
            observe: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

impl DiffPipelineConfig {
    /// A default configuration over `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Sets the retry budget (see [`Self::retry_limit`]).
    #[must_use]
    pub fn retry_limit(mut self, retries: u32) -> Self {
        self.retry_limit = retries;
        self
    }

    /// Sets the per-row deadline (see [`Self::row_deadline`]).
    #[must_use]
    pub fn row_deadline(mut self, deadline: Duration) -> Self {
        self.row_deadline = Some(deadline);
        self
    }

    /// Sets the shutdown grace period (see [`Self::shutdown_grace`]).
    #[must_use]
    pub fn shutdown_grace(mut self, grace: Duration) -> Self {
        self.shutdown_grace = grace;
        self
    }

    /// Sets the kernel policy (see [`Self::kernel`]).
    #[must_use]
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the chunk scheduling weight (see [`Self::chunk_target`]).
    #[must_use]
    pub fn chunk_target(mut self, runs_per_chunk: usize) -> Self {
        self.chunk_target = Some(runs_per_chunk);
        self
    }

    /// Enables observability with the default settings (see
    /// [`Self::observe`]).
    #[must_use]
    pub fn observe(mut self) -> Self {
        self.observe = Some(ObsConfig::default());
        self
    }

    /// Enables observability with explicit settings (see [`Self::observe`]).
    #[must_use]
    pub fn observe_with(mut self, obs: ObsConfig) -> Self {
        self.observe = Some(obs);
        self
    }

    /// Installs a deterministic fault schedule (test builds only).
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builds the pipeline described by this configuration.
    #[must_use]
    pub fn build(self) -> DiffPipeline {
        DiffPipeline::with_config(self)
    }
}

/// Lifetime totals of the supervisor's interventions (never reset; the
/// per-batch view lives in [`PipelineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionCounters {
    /// Chunks re-enqueued after a worker panic or death.
    pub retries: u64,
    /// Worker threads replaced after dying unexpectedly.
    pub respawns: u64,
    /// Deadline expiries observed by collectors.
    pub timeouts: u64,
}

/// Where a chunk's row pairs live. Cloning is `Arc`-cheap in both cases,
/// which is what makes chunk checkout (and retry re-enqueue) free of row
/// copies.
#[derive(Clone)]
enum RowsSource {
    /// Rows owned by this chunk (streaming submits and the borrowing batch
    /// API). `first` is the image row the slice starts at, so sub-chunks
    /// can keep absolute indices.
    Owned {
        rows: Arc<[(RleRow, RleRow)]>,
        first: usize,
    },
    /// Rows shared with the caller's images (the zero-copy batch API).
    /// Indexed by absolute image row.
    Shared { a: Arc<RleImage>, b: Arc<RleImage> },
}

/// A contiguous chunk of row pairs: the scheduling, checkout and retry
/// unit. Row `i` (for `lo <= i < hi`) carries ticket `base + (i - lo)`, so
/// per-row identity survives chunking.
#[derive(Clone)]
struct Job {
    /// Ticket of row `lo`.
    base: u64,
    lo: usize,
    hi: usize,
    attempts: u32,
    source: RowsSource,
}

impl Job {
    fn len(&self) -> usize {
        self.hi - self.lo
    }

    fn ticket_of(&self, i: usize) -> u64 {
        self.base + (i - self.lo) as u64
    }

    fn row(&self, i: usize) -> (&RleRow, &RleRow) {
        match &self.source {
            RowsSource::Owned { rows, first } => {
                let pair = &rows[i - first];
                (&pair.0, &pair.1)
            }
            RowsSource::Shared { a, b } => (&a.rows()[i], &b.rows()[i]),
        }
    }

    /// A sub-chunk over `[lo, hi)` keeping this chunk's attempt count and
    /// per-row tickets.
    fn slice(&self, lo: usize, hi: usize) -> Job {
        Job {
            base: self.base + (lo - self.lo) as u64,
            lo,
            hi,
            attempts: self.attempts,
            source: self.source.clone(),
        }
    }
}

/// One row's result inside a chunk message.
struct RowResult {
    ticket: u64,
    kernel: Option<KernelChoice>,
    result: Result<(RleRow, ArrayStats), SystolicError>,
}

/// What a worker sends per finished chunk: one message for many rows.
struct ChunkDone {
    worker: usize,
    results: Vec<RowResult>,
}

/// A chunk a worker currently holds, kept in shared state so the
/// supervisor can recover it if the worker dies mid-chunk. Keyed by the
/// chunk's base ticket (unique among live chunks).
struct CheckedOut {
    worker: usize,
    job: Job,
}

struct State {
    queue: VecDeque<Job>,
    running: HashMap<u64, CheckedOut>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    retries: AtomicU64,
    respawns: AtomicU64,
    timeouts: AtomicU64,
    /// Chunk-result vectors recycled from the collector back to workers.
    spare: Mutex<Vec<Vec<RowResult>>>,
    /// How many times a worker got a recycled vector instead of allocating.
    buffer_hits: AtomicU64,
    kernel: Kernel,
    /// Observability sink, shared by workers, supervisor and collectors.
    /// `None` keeps every recording site to a single predictable branch.
    obs: Option<Arc<Observer>>,
    #[cfg(feature = "fault-injection")]
    faults: Option<FaultPlan>,
}

impl Shared {
    /// Poison-tolerant state lock: a worker that panicked while holding the
    /// guard leaves consistent-enough data (queue/running entries are only
    /// mutated through single push/insert/remove calls), so supervision
    /// proceeds on the recovered guard instead of propagating the poison.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirrors the queue depth into the metrics gauge; called under the
    /// state lock after every queue mutation so the gauge never drifts.
    fn sync_queue_gauge(&self, state: &State) {
        if let Some(obs) = &self.obs {
            obs.metrics.queue_depth.set(state.queue.len() as i64);
        }
    }

    fn counters(&self) -> SupervisionCounters {
        SupervisionCounters {
            retries: self.retries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    fn take_spare(&self) -> Vec<RowResult> {
        let recycled = self
            .spare
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match recycled {
            Some(vec) => {
                self.buffer_hits.fetch_add(1, Ordering::Relaxed);
                vec
            }
            None => Vec::new(),
        }
    }

    fn return_spare(&self, mut vec: Vec<RowResult>) {
        vec.clear();
        if vec.capacity() == 0 {
            return;
        }
        let mut pool = self.spare.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < SPARE_POOL_CAP {
            pool.push(vec);
        }
    }
}

/// A persistent, supervised pool of row-diff workers (see the module docs).
///
/// Dropping the pipeline drains the remaining queue and joins every worker
/// that exits within [`DiffPipelineConfig::shutdown_grace`]; wedged workers
/// are detached so `Drop` never deadlocks.
pub struct DiffPipeline {
    shared: Arc<Shared>,
    results: Receiver<ChunkDone>,
    /// Kept for two supervisor duties: handing a sender to respawned
    /// workers, and synthesizing [`SystolicError::RowFailed`] outcomes for
    /// chunks orphaned past their retry budget. Holding it also means the
    /// channel can never disconnect under a blocked collector.
    result_tx: Sender<ChunkDone>,
    handles: Vec<JoinHandle<()>>,
    config: DiffPipelineConfig,
    next_ticket: u64,
    in_flight: usize,
    /// Rows unpacked from received chunks but not yet handed to the caller.
    pending: VecDeque<RowOutcome>,
}

impl std::fmt::Debug for DiffPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffPipeline")
            .field("workers", &self.handles.len())
            .field("in_flight", &self.in_flight)
            .field("counters", &self.shared.counters())
            .finish()
    }
}

impl DiffPipeline {
    /// Spawns a pool of `threads` persistent workers with the default
    /// supervision settings.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self::with_config(DiffPipelineConfig::new(threads))
    }

    /// Spawns a pool described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0`.
    #[must_use]
    pub fn with_config(config: DiffPipelineConfig) -> Self {
        assert!(config.threads > 0, "need at least one thread");
        let obs = config.observe.map(|cfg| Arc::new(Observer::new(cfg)));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                running: HashMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            retries: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            spare: Mutex::new(Vec::new()),
            buffer_hits: AtomicU64::new(0),
            kernel: config.kernel,
            obs,
            #[cfg(feature = "fault-injection")]
            faults: config.fault_plan.clone(),
        });
        let (result_tx, results) = std::sync::mpsc::channel();
        let mut pipeline = Self {
            shared,
            results,
            result_tx,
            handles: Vec::new(),
            config,
            next_ticket: 0,
            in_flight: 0,
            pending: VecDeque::new(),
        };
        pipeline.handles = (0..pipeline.config.threads)
            .map(|worker| pipeline.spawn_worker(worker))
            .collect();
        pipeline
    }

    fn spawn_worker(&self, worker: usize) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let tx = self.result_tx.clone();
        let retry_limit = self.config.retry_limit;
        std::thread::spawn(move || worker_loop(&shared, &tx, worker, retry_limit))
    }

    /// Number of workers in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Rows submitted but not yet collected.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Lifetime supervision totals (see [`SupervisionCounters`]).
    #[must_use]
    pub fn supervision_counters(&self) -> SupervisionCounters {
        self.shared.counters()
    }

    /// The pipeline's [`Observer`], if observability was enabled via
    /// [`DiffPipelineConfig::observe`]. The `Arc` stays valid after the
    /// pipeline is dropped, so snapshots can outlive the pool.
    #[must_use]
    pub fn observer(&self) -> Option<Arc<Observer>> {
        self.shared.obs.clone()
    }

    /// Mirrors `self.in_flight` into the metrics gauge.
    fn sync_flight_gauge(&self) {
        if let Some(obs) = &self.shared.obs {
            obs.metrics.in_flight.set(self.in_flight as i64);
        }
    }

    /// Enqueues one row pair for differencing; returns the [`Ticket`] its
    /// [`RowOutcome`] will carry. Never blocks.
    pub fn submit(&mut self, a: RleRow, b: RleRow) -> Ticket {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let job = Job {
            base: ticket,
            lo: 0,
            hi: 1,
            attempts: 0,
            source: RowsSource::Owned {
                rows: Arc::from(vec![(a, b)]),
                first: 0,
            },
        };
        if let Some(obs) = &self.shared.obs {
            obs.metrics.rows_submitted.inc();
            obs.metrics.chunks_dispatched.inc();
            obs.record(TraceKind::Submit { ticket });
        }
        {
            let mut state = self.shared.lock_state();
            state.queue.push_back(job);
            self.shared.sync_queue_gauge(&state);
        }
        self.shared.work_ready.notify_one();
        self.in_flight += 1;
        self.sync_flight_gauge();
        Ticket(ticket)
    }

    /// Blocks for the next completed row, in completion (not submission)
    /// order. Returns `None` when nothing is in flight.
    ///
    /// While blocked, the collector supervises the pool: dead workers are
    /// respawned and their checked-out chunks re-enqueued, so a crashed
    /// thread delays rows rather than hanging the collector. Only a
    /// genuinely wedged worker can block indefinitely — use
    /// [`Self::collect_timeout`] to bound that.
    pub fn collect(&mut self) -> Option<RowOutcome> {
        self.collect_inner(None)
            .expect("collect without a deadline cannot time out")
    }

    /// Like [`Self::collect`], but gives up with
    /// [`SystolicError::DeadlineExceeded`] if no row completes within
    /// `timeout`. The timed-out rows stay in flight (their worker may still
    /// deliver them later); callers can keep collecting, [`Self::drain`]
    /// the pipeline, or drop it.
    pub fn collect_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<RowOutcome>, SystolicError> {
        self.collect_inner(Some(timeout))
    }

    fn collect_inner(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<RowOutcome>, SystolicError> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        if let Some(outcome) = self.pending.pop_front() {
            self.in_flight -= 1;
            self.sync_flight_gauge();
            return Ok(Some(outcome));
        }
        let start = Instant::now();
        let deadline = timeout.map(|t| start + t);
        loop {
            let wait = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.shared.timeouts.fetch_add(1, Ordering::Relaxed);
                        if let Some(obs) = &self.shared.obs {
                            obs.metrics.timeouts.inc();
                            obs.record(TraceKind::Timeout {
                                in_flight: self.in_flight as u64,
                            });
                        }
                        return Err(SystolicError::DeadlineExceeded {
                            waited: start.elapsed(),
                            in_flight: self.in_flight,
                        });
                    }
                    SUPERVISION_TICK.min(d - now)
                }
                None => SUPERVISION_TICK,
            };
            match self.results.recv_timeout(wait) {
                Ok(done) => {
                    self.absorb_chunk(done);
                    if let Some(outcome) = self.pending.pop_front() {
                        self.in_flight -= 1;
                        self.sync_flight_gauge();
                        return Ok(Some(outcome));
                    }
                }
                // The tick elapsed with no result: check on the workers.
                // Disconnection is impossible (`result_tx` lives on self),
                // but treat it like a tick defensively.
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    self.supervise();
                }
            }
        }
    }

    /// Unpacks a chunk message into per-row outcomes and recycles its
    /// vector back to the workers.
    fn absorb_chunk(&mut self, mut done: ChunkDone) {
        for row in done.results.drain(..) {
            if let Some(obs) = &self.shared.obs {
                if row.result.is_ok() {
                    obs.metrics.rows_completed.inc();
                } else {
                    obs.metrics.rows_errored.inc();
                }
            }
            self.pending.push_back(RowOutcome {
                ticket: Ticket(row.ticket),
                worker: done.worker,
                kernel: row.kernel,
                result: row.result,
            });
        }
        self.shared.return_spare(done.results);
    }

    /// Replaces dead worker threads and recovers the chunks they held.
    ///
    /// Workers only exit voluntarily once `shutdown` is set (which happens
    /// in `Drop`, after which no collector runs), so any finished handle
    /// seen here is a casualty: join it to reap the thread, spawn a
    /// replacement on the same slot, and re-enqueue — or fail, past the
    /// retry budget — every chunk the casualty had checked out.
    fn supervise(&mut self) {
        for worker in 0..self.handles.len() {
            if !self.handles[worker].is_finished() {
                continue;
            }
            let replacement = self.spawn_worker(worker);
            let dead = std::mem::replace(&mut self.handles[worker], replacement);
            let _ = dead.join();
            self.shared.respawns.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &self.shared.obs {
                obs.metrics.respawns.inc();
                obs.record(TraceKind::Respawn {
                    worker: worker as u32,
                });
            }

            let orphans: Vec<Job> = {
                let mut state = self.shared.lock_state();
                let bases: Vec<u64> = state
                    .running
                    .iter()
                    .filter(|(_, held)| held.worker == worker)
                    .map(|(base, _)| *base)
                    .collect();
                bases
                    .into_iter()
                    .map(|b| state.running.remove(&b).expect("listed above").job)
                    .collect()
            };
            for mut job in orphans {
                job.attempts += 1;
                if job.attempts > self.config.retry_limit {
                    if let Some(obs) = &self.shared.obs {
                        for i in job.lo..job.hi {
                            obs.record(TraceKind::RowFailed {
                                ticket: job.ticket_of(i),
                                attempts: job.attempts,
                            });
                        }
                    }
                    let results = (job.lo..job.hi)
                        .map(|i| RowResult {
                            ticket: job.ticket_of(i),
                            kernel: None,
                            result: Err(SystolicError::RowFailed {
                                row: job.ticket_of(i),
                                attempts: job.attempts,
                                cause: "worker thread died while processing the row".into(),
                            }),
                        })
                        .collect();
                    let _ = self.result_tx.send(ChunkDone { worker, results });
                } else {
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = &self.shared.obs {
                        obs.metrics.retries.inc();
                        obs.record(TraceKind::Retry {
                            chunk: job.base,
                            rows: job.len() as u32,
                            attempt: job.attempts,
                        });
                    }
                    let mut state = self.shared.lock_state();
                    state.queue.push_back(job);
                    self.shared.sync_queue_gauge(&state);
                    drop(state);
                    self.shared.work_ready.notify_one();
                }
            }
        }
    }

    /// Collects every in-flight outcome (blocking, with supervision) and
    /// returns them, leaving the pipeline idle.
    pub fn drain(&mut self) -> Vec<RowOutcome> {
        let mut out = Vec::new();
        while let Some(done) = self.collect() {
            out.push(done);
        }
        if let Some(obs) = &self.shared.obs {
            obs.record(TraceKind::Drain {
                collected: out.len() as u64,
            });
        }
        out
    }

    /// Abandons a failed batch: queued-but-unstarted chunks are dropped and
    /// already-delivered results discarded. Rows checked out by (possibly
    /// wedged) workers remain in flight.
    fn abandon_queued(&mut self) {
        let dropped: usize = {
            let mut state = self.shared.lock_state();
            let rows = state.queue.iter().map(Job::len).sum();
            state.queue.clear();
            self.shared.sync_queue_gauge(&state);
            rows
        };
        self.in_flight -= dropped;
        while let Ok(done) = self.results.try_recv() {
            self.in_flight -= done.results.len();
            self.shared.return_spare(done.results);
        }
        self.in_flight -= self.pending.len();
        self.pending.clear();
        self.sync_flight_gauge();
    }

    /// Splits `[0, height)` into contiguous chunks whose summed row weight
    /// (`k1 + k2 + 1`, so empty rows still make progress) reaches the
    /// configured or derived target, and allocates one ticket per row.
    fn plan_chunks(
        &mut self,
        a: &RleImage,
        b: &RleImage,
        make_source: impl Fn(usize, usize) -> RowsSource,
    ) -> Vec<Job> {
        let height = a.height();
        let weight = |i: usize| a.rows()[i].run_count() + b.rows()[i].run_count() + 1;
        let target = self.config.chunk_target.unwrap_or_else(|| {
            let total: usize = (0..height).map(weight).sum();
            total / (self.handles.len() * CHUNKS_PER_WORKER).max(1)
        });
        let target = target.max(1);

        let mut jobs = Vec::new();
        let mut lo = 0usize;
        let mut acc = 0usize;
        for i in 0..height {
            acc += weight(i);
            if acc >= target || i + 1 == height {
                let job = Job {
                    base: self.next_ticket,
                    lo,
                    hi: i + 1,
                    attempts: 0,
                    source: make_source(lo, i + 1),
                };
                self.next_ticket += job.len() as u64;
                jobs.push(job);
                lo = i + 1;
                acc = 0;
            }
        }
        jobs
    }

    /// Diffs two images row by row across the pool, reassembling the rows
    /// in order and aggregating per-row statistics. Each input row is
    /// cloned **once** into per-chunk storage (use
    /// [`Self::diff_images_shared`] to avoid even that).
    ///
    /// Bit-identical to [`crate::image::xor_image`] for every kernel
    /// policy. If any row fails, the remaining rows are still drained and
    /// the first error is returned. With a
    /// [`DiffPipelineConfig::row_deadline`] configured, a stall longer than
    /// the deadline aborts the batch with
    /// [`SystolicError::DeadlineExceeded`]; queued chunks are abandoned but
    /// a wedged worker's chunk stays in flight (see [`Self::in_flight`]).
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight (collect them
    /// first; the batch front-end needs an idle pipeline).
    pub fn diff_images(
        &mut self,
        a: &RleImage,
        b: &RleImage,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let jobs = self.plan_chunks(a, b, |lo, hi| {
            let rows: Vec<(RleRow, RleRow)> = (lo..hi)
                .map(|i| (a.rows()[i].clone(), b.rows()[i].clone()))
                .collect();
            RowsSource::Owned {
                rows: Arc::from(rows),
                first: lo,
            }
        });
        // The old scheduler cloned each row at submit AND at checkout; the
        // per-chunk copy keeps only the submit-time clone.
        let clones_avoided = 2 * a.height() as u64;
        self.run_batch(a.width(), a.height(), jobs, clones_avoided)
    }

    /// Zero-copy batch: like [`Self::diff_images`], but the chunks borrow
    /// the caller's images through the `Arc`s, so no row data is cloned at
    /// all — submission cost is independent of image content.
    ///
    /// # Panics
    ///
    /// Panics if streaming submissions are still in flight.
    pub fn diff_images_shared(
        &mut self,
        a: &Arc<RleImage>,
        b: &Arc<RleImage>,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        assert!(self.in_flight == 0, "diff_images needs an idle pipeline");
        check_dims(a, b)?;
        let jobs = self.plan_chunks(a, b, |_, _| RowsSource::Shared {
            a: Arc::clone(a),
            b: Arc::clone(b),
        });
        let clones_avoided = 4 * a.height() as u64;
        self.run_batch(a.width(), a.height(), jobs, clones_avoided)
    }

    /// Common batch engine: enqueue the planned chunks, collect every row,
    /// reassemble in ticket order and aggregate statistics.
    fn run_batch(
        &mut self,
        width: u32,
        height: usize,
        jobs: Vec<Job>,
        clones_avoided: u64,
    ) -> Result<(RleImage, PipelineStats), SystolicError> {
        let start = Instant::now();
        let counters_before = self.shared.counters();
        let hits_before = self.shared.buffer_hits.load(Ordering::Relaxed);
        let base = jobs.first().map_or(self.next_ticket, |j| j.base);
        let mut stats = PipelineStats {
            workers: self.handles.len(),
            chunks: jobs.len(),
            row_clones_avoided: clones_avoided,
            ..Default::default()
        };
        if let Some(obs) = &self.shared.obs {
            obs.metrics.batches.inc();
            obs.metrics.rows_submitted.add(height as u64);
            obs.metrics.chunks_dispatched.add(jobs.len() as u64);
            // Submit events precede the enqueue so every row's causal chain
            // starts before any worker can check its chunk out.
            for job in &jobs {
                for i in job.lo..job.hi {
                    obs.record(TraceKind::Submit {
                        ticket: job.ticket_of(i),
                    });
                }
            }
        }
        {
            let mut state = self.shared.lock_state();
            for job in jobs {
                state.queue.push_back(job);
            }
            self.shared.sync_queue_gauge(&state);
        }
        self.shared.work_ready.notify_all();
        self.in_flight += height;
        self.sync_flight_gauge();

        let mut rows: Vec<Option<RleRow>> = vec![None; height];
        let mut seen = vec![false; self.handles.len()];
        let mut first_err: Option<SystolicError> = None;
        loop {
            let collected = match self.config.row_deadline {
                Some(deadline) => self.collect_timeout(deadline),
                None => Ok(self.collect()),
            };
            let done = match collected {
                Ok(Some(done)) => done,
                Ok(None) => break,
                Err(e) => {
                    self.abandon_queued();
                    return Err(e);
                }
            };
            match done.result {
                Ok((row, row_stats)) => {
                    stats.totals.absorb(&row_stats);
                    stats.max_row_iterations = stats.max_row_iterations.max(row_stats.iterations);
                    stats.rows += 1;
                    match done.kernel {
                        Some(KernelChoice::FastPath) => stats.rows_fast_path += 1,
                        Some(KernelChoice::Rle) => stats.rows_rle_kernel += 1,
                        Some(KernelChoice::Packed) => stats.rows_packed_kernel += 1,
                        Some(KernelChoice::Systolic) => stats.rows_systolic_kernel += 1,
                        None => {}
                    }
                    seen[done.worker] = true;
                    rows[usize::try_from(done.ticket.id() - base).expect("ticket fits")] =
                        Some(row);
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        stats.effective_workers = seen.iter().filter(|s| **s).count();
        stats.wall = start.elapsed();
        let counters = self.shared.counters();
        stats.retries = counters.retries - counters_before.retries;
        stats.respawns = counters.respawns - counters_before.respawns;
        stats.timeouts = counters.timeouts - counters_before.timeouts;
        stats.buffers_reused = self.shared.buffer_hits.load(Ordering::Relaxed) - hits_before;
        let rows: Vec<RleRow> = rows
            .into_iter()
            .map(|r| r.expect("every row collected"))
            .collect();
        let image = RleImage::from_rows(width, rows).expect("row widths preserved");
        Ok((image, stats))
    }
}

impl Drop for DiffPipeline {
    fn drop(&mut self) {
        self.shared.lock_state().shutdown = true;
        self.shared.work_ready.notify_all();
        // Join workers that exit within the grace period; detach the rest
        // (e.g. a wedged worker mid-stall) so Drop can never deadlock. A
        // detached worker sees the shutdown flag and exits as soon as it
        // unwedges; the Arc keeps its shared state alive until then.
        let deadline = Instant::now() + self.config.shutdown_grace;
        for handle in self.handles.drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

/// A worker: pop chunks until shutdown, diffing each row through the
/// configured kernel on persistent per-worker scratch.
///
/// Each chunk is checked out in shared state before processing (so the
/// supervisor can recover it if this thread dies) and every row runs under
/// `catch_unwind` (so a panicking row costs its chunk one retry, not the
/// worker).
fn worker_loop(shared: &Arc<Shared>, results: &Sender<ChunkDone>, worker: usize, retry_limit: u32) {
    let mut scratch = KernelScratch::new();
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.sync_queue_gauge(&state);
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.lock_state().running.insert(
            job.base,
            CheckedOut {
                worker,
                job: job.clone(),
            },
        );
        // Timestamps exist only under observation; the unobserved hot path
        // takes no clock readings at all.
        let chunk_start = shared.obs.as_ref().map(|obs| {
            obs.record(TraceKind::Checkout {
                chunk: job.base,
                rows: job.len() as u32,
                worker: worker as u32,
                attempt: job.attempts,
            });
            Instant::now()
        });

        let mut out = shared.take_spare();
        out.reserve(job.len());
        // Index and panic message of the row that crashed this chunk, if
        // any; rows before it are discarded and recomputed on retry so a
        // chunk's results are all-or-nothing (keeps stats totals exact).
        let mut crashed: Option<(usize, String)> = None;
        for i in job.lo..job.hi {
            let ticket = job.ticket_of(i);

            #[cfg(feature = "fault-injection")]
            let mut injected_panic = false;
            #[cfg(feature = "fault-injection")]
            if let Some(fault) = shared.faults.as_ref().and_then(|plan| plan.take(ticket)) {
                match fault {
                    Fault::Panic => injected_panic = true,
                    Fault::Stall(duration) => std::thread::sleep(duration),
                    // Exit with the chunk still checked out: the supervisor
                    // must notice the dead thread and recover the orphan.
                    // Injected death is cooperative, so the rows already
                    // diffed into `out` can be booked as discarded (a real
                    // crash can't do this; `rows_discarded` is a lower
                    // bound there).
                    Fault::Die => {
                        if let Some(obs) = &shared.obs {
                            obs.metrics.rows_discarded.add(out.len() as u64);
                        }
                        return;
                    }
                    Fault::PoisonLock => {
                        let shared = Arc::clone(shared);
                        let _ = catch_unwind(AssertUnwindSafe(move || {
                            let _guard =
                                shared.state.lock().unwrap_or_else(PoisonError::into_inner);
                            panic!("injected fault: poisoning the pipeline state lock");
                        }));
                    }
                }
            }

            let (ra, rb) = job.row(i);
            let row_start = shared.obs.as_ref().map(|_| Instant::now());
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if injected_panic {
                    panic!("injected fault: panic on row {ticket}");
                }
                kernel::diff_row(shared.kernel, &mut scratch, ra, rb)
            }));
            match attempt {
                // Kernel errors (e.g. a width mismatch) are per-row
                // outcomes; the rest of the chunk proceeds.
                Ok(result) => {
                    if let Some(obs) = &shared.obs {
                        match &result {
                            Ok((_, stats, choice)) => {
                                let latency_ns =
                                    row_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                let runs = (stats.k1 + stats.k2) as u64;
                                obs.metrics.rows_diffed.inc();
                                match choice {
                                    KernelChoice::FastPath => obs.metrics.rows_fast_path.inc(),
                                    KernelChoice::Rle => obs.metrics.rows_rle_kernel.inc(),
                                    KernelChoice::Packed => obs.metrics.rows_packed_kernel.inc(),
                                    KernelChoice::Systolic => {
                                        obs.metrics.rows_systolic_kernel.inc();
                                    }
                                }
                                obs.metrics.row_latency_ns.record(latency_ns);
                                obs.metrics.row_runs.record(runs);
                                obs.record(TraceKind::Kernel {
                                    ticket,
                                    worker: worker as u32,
                                    choice: *choice,
                                    runs,
                                    latency_ns,
                                });
                            }
                            Err(_) => {
                                obs.metrics.rows_kernel_errors.inc();
                                obs.record(TraceKind::RowError { ticket });
                            }
                        }
                    }
                    out.push(RowResult {
                        ticket,
                        kernel: result.as_ref().ok().map(|(_, _, choice)| *choice),
                        result: result.map(|(row, stats, _)| (row, stats)),
                    });
                }
                Err(payload) => {
                    scratch.discard_poisoned();
                    crashed = Some((i, panic_message(payload)));
                    break;
                }
            }
        }

        match crashed {
            None => {
                shared.lock_state().running.remove(&job.base);
                if let Some(obs) = &shared.obs {
                    let latency_ns = chunk_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    obs.metrics.chunks_completed.inc();
                    obs.metrics.chunk_latency_ns.record(latency_ns);
                    obs.record(TraceKind::ChunkDone {
                        chunk: job.base,
                        rows: out.len() as u32,
                        worker: worker as u32,
                        latency_ns,
                    });
                }
                // The receiver disappearing mid-chunk means the pipeline is
                // being dropped; the queue will hand us the shutdown flag
                // next round.
                let _ = results.send(ChunkDone {
                    worker,
                    results: out,
                });
            }
            Some((culprit, cause)) => {
                // The partial results are all-or-nothing casualties: their
                // rows were diffed (and counted) but will be diffed again.
                if let Some(obs) = &shared.obs {
                    obs.metrics.rows_discarded.add(out.len() as u64);
                }
                shared.return_spare(out);
                shared.lock_state().running.remove(&job.base);
                let mut job = job;
                job.attempts += 1;
                if job.attempts > retry_limit {
                    // Only the culprit row fails; its siblings go back to
                    // the queue as sub-chunks that keep the attempt count.
                    let ticket = job.ticket_of(culprit);
                    if let Some(obs) = &shared.obs {
                        obs.record(TraceKind::RowFailed {
                            ticket,
                            attempts: job.attempts,
                        });
                    }
                    let _ = results.send(ChunkDone {
                        worker,
                        results: vec![RowResult {
                            ticket,
                            kernel: None,
                            result: Err(SystolicError::RowFailed {
                                row: ticket,
                                attempts: job.attempts,
                                cause,
                            }),
                        }],
                    });
                    let mut state = shared.lock_state();
                    if culprit > job.lo {
                        state.queue.push_back(job.slice(job.lo, culprit));
                    }
                    if culprit + 1 < job.hi {
                        state.queue.push_back(job.slice(culprit + 1, job.hi));
                    }
                    shared.sync_queue_gauge(&state);
                    drop(state);
                    shared.work_ready.notify_all();
                } else {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = &shared.obs {
                        obs.metrics.retries.inc();
                        obs.record(TraceKind::Retry {
                            chunk: job.base,
                            rows: job.len() as u32,
                            attempt: job.attempts,
                        });
                    }
                    let mut state = shared.lock_state();
                    state.queue.push_back(job);
                    shared.sync_queue_gauge(&state);
                    drop(state);
                    shared.work_ready.notify_one();
                }
            }
        }
    }
}

/// Best-effort rendering of a caught panic payload, taking ownership so a
/// `String` payload moves out instead of being copied.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::xor_image;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn batch_matches_sequential_reference() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();

        // The systolic kernel reproduces the reference machine's stats
        // exactly — same per-row iteration counts, same totals.
        let mut exact = DiffPipelineConfig::new(3).kernel(Kernel::Systolic).build();
        let (got, stats) = exact.diff_images(&a, &b).unwrap();
        assert_eq!(got, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.totals.iterations, seq_stats.totals.iterations);
        assert_eq!(stats.max_row_iterations, seq_stats.max_row_iterations);
        assert_eq!(stats.rows_systolic_kernel, 4);
        assert_eq!(stats.workers, 3);
        assert!(stats.effective_workers >= 1 && stats.effective_workers <= 3);
        // A healthy run needs no supervisor interventions.
        assert_eq!((stats.retries, stats.respawns, stats.timeouts), (0, 0, 0));
        assert_eq!(exact.supervision_counters(), SupervisionCounters::default());

        // The default hybrid kernel is bit-identical with cheaper stats.
        let mut pipeline = DiffPipeline::new(3);
        let (hybrid, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(hybrid, seq);
        assert_eq!(stats.rows, 4);
        assert_eq!(
            stats.rows_fast_path
                + stats.rows_rle_kernel
                + stats.rows_packed_kernel
                + stats.rows_systolic_kernel,
            4,
            "every row's kernel choice is recorded"
        );
        assert!(stats.totals.within_theorem1());
        assert!(stats.chunks >= 1);
        assert_eq!(stats.row_clones_avoided, 8);
    }

    #[test]
    fn shared_batch_is_zero_copy_and_identical() {
        let a = Arc::new(img("####....\n..##..##\n........\n#.#.#.#.\n"));
        let b = Arc::new(img("####....\n..##..#.\n...##...\n.#.#.#.#\n"));
        let mut pipeline = DiffPipeline::new(2);
        let (owned, _) = pipeline.diff_images(&a, &b).unwrap();
        let (shared, stats) = pipeline.diff_images_shared(&a, &b).unwrap();
        assert_eq!(owned, shared);
        assert_eq!(stats.row_clones_avoided, 16, "4 clones avoided per row");
        assert_eq!(stats.rows, 4);
    }

    #[test]
    fn forced_kernels_are_bit_identical() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (seq, _) = xor_image(&a, &b).unwrap();
        for kernel in [Kernel::Rle, Kernel::Packed] {
            let mut pipeline = DiffPipelineConfig::new(2).kernel(kernel).build();
            let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
            assert_eq!(got, seq, "{kernel:?}");
            match kernel {
                Kernel::Rle => assert_eq!(stats.rows_rle_kernel, 4),
                Kernel::Packed => assert_eq!(stats.rows_packed_kernel, 4),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn chunk_target_controls_scheduling_granularity() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        // A huge target packs the whole image into one chunk...
        let mut coarse = DiffPipelineConfig::new(2).chunk_target(1_000_000).build();
        let (_, stats) = coarse.diff_images(&a, &b).unwrap();
        assert_eq!(stats.chunks, 1);
        // ...a target of one run forces per-row chunks.
        let mut fine = DiffPipelineConfig::new(2).chunk_target(1).build();
        let (_, stats) = fine.diff_images(&a, &b).unwrap();
        assert_eq!(stats.chunks, 4);
    }

    #[test]
    fn result_buffers_are_recycled_across_batches() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(1).chunk_target(1).build();
        let (_, _first) = pipeline.diff_images(&a, &b).unwrap();
        let (_, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert!(
            stats.buffers_reused > 0,
            "second batch must hit the recycling pool: {stats:?}"
        );
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let a = img("##..##..\n.######.\n");
        let b = img("##.###..\n.#....#.\n");
        let mut pipeline = DiffPipeline::new(2);
        let (first, _) = pipeline.diff_images(&a, &b).unwrap();
        let (second, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(first, second);
        let (identity, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(identity.ones(), 0);
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.rows_fast_path, 2, "equal rows take the fast path");
    }

    #[test]
    fn streaming_submit_collect_round_trip() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipeline::new(2);
        let tickets: Vec<Ticket> = a
            .rows()
            .iter()
            .zip(b.rows())
            .map(|(ra, rb)| pipeline.submit(ra.clone(), rb.clone()))
            .collect();
        assert_eq!(pipeline.in_flight(), 3);

        let mut rows: Vec<Option<RleRow>> = vec![None; 3];
        while let Some(done) = pipeline.collect() {
            let slot = tickets.iter().position(|t| *t == done.ticket).unwrap();
            rows[slot] = Some(done.result.unwrap().0);
        }
        assert_eq!(pipeline.in_flight(), 0);
        let (expected, _) = xor_image(&a, &b).unwrap();
        for (slot, row) in rows.into_iter().enumerate() {
            assert_eq!(row.unwrap(), expected.rows()[slot]);
        }
    }

    #[test]
    fn row_error_is_reported_and_pipeline_survives() {
        let mut pipeline = DiffPipeline::new(2);
        let good = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        let bad = RleRow::new(8); // width mismatch against `good`
        pipeline.submit(good.clone(), bad);
        let outcome = pipeline.collect().unwrap();
        assert!(outcome.result.is_err());
        assert_eq!(outcome.kernel, None, "no kernel ran for the bad row");
        // The pool still works after the failure.
        pipeline.submit(good.clone(), good.clone());
        let ok = pipeline.collect().unwrap();
        assert!(ok.result.unwrap().0.is_empty());
    }

    #[test]
    fn empty_image_batch() {
        let a = RleImage::new(32, 0);
        let mut pipeline = DiffPipeline::new(2);
        let (d, stats) = pipeline.diff_images(&a, &a.clone()).unwrap();
        assert_eq!(d.height(), 0);
        assert_eq!(stats.rows, 0);
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.effective_workers, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut pipeline = DiffPipeline::new(2);
        let a = RleImage::new(8, 2);
        assert!(pipeline.diff_images(&a, &RleImage::new(9, 2)).is_err());
        assert!(pipeline.diff_images(&a, &RleImage::new(8, 3)).is_err());
        // Failed dimension checks leave nothing in flight.
        assert_eq!(pipeline.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_workers_panics() {
        let _ = DiffPipeline::new(0);
    }

    #[test]
    fn config_defaults_and_builders() {
        let config = DiffPipelineConfig::default();
        assert!(config.threads >= 1);
        assert_eq!(config.retry_limit, 2);
        assert!(config.row_deadline.is_none());
        assert_eq!(config.kernel, Kernel::Auto);
        assert_eq!(config.chunk_target, None);
        assert_eq!(config.observe, None, "observability is opt-in");
        let config = DiffPipelineConfig::new(2)
            .retry_limit(5)
            .row_deadline(Duration::from_millis(250))
            .shutdown_grace(Duration::from_millis(100))
            .kernel(Kernel::Packed)
            .chunk_target(64);
        assert_eq!(config.threads, 2);
        assert_eq!(config.retry_limit, 5);
        assert_eq!(config.row_deadline, Some(Duration::from_millis(250)));
        assert_eq!(config.shutdown_grace, Duration::from_millis(100));
        assert_eq!(config.kernel, Kernel::Packed);
        assert_eq!(config.chunk_target, Some(64));
        let pipeline = config.build();
        assert_eq!(pipeline.workers(), 2);
    }

    #[test]
    fn observed_pipeline_records_a_consistent_snapshot() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let unobserved = DiffPipeline::new(2);
        assert!(unobserved.observer().is_none(), "off by default");

        let mut pipeline = DiffPipelineConfig::new(2).observe().build();
        let obs = pipeline.observer().expect("observer attached");
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);

        let snapshot = obs.metrics_snapshot();
        assert_eq!(snapshot.batches, 1);
        assert_eq!(snapshot.rows_submitted, 4);
        assert_eq!(snapshot.rows_completed, 4);
        assert_eq!(snapshot.rows_diffed, 4, "no faults: one diff per row");
        assert_eq!(snapshot.kernel_rows(), 4);
        assert_eq!(snapshot.rows_fast_path, stats.rows_fast_path as u64);
        assert_eq!(snapshot.chunks_dispatched, stats.chunks as u64);
        assert_eq!(snapshot.chunks_completed, stats.chunks as u64);
        assert_eq!(snapshot.row_latency_ns.count, 4);
        assert_eq!(snapshot.row_runs.count, 4);
        assert_eq!((snapshot.queue_depth, snapshot.in_flight), (0, 0));
        // Trace carries the full causal story: 4 submits, a checkout and a
        // chunk-done per chunk, one kernel event per row.
        let events = obs.trace_snapshot();
        let count = |pred: fn(&TraceKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
        assert_eq!(count(|k| matches!(k, TraceKind::Submit { .. })), 4);
        assert_eq!(count(|k| matches!(k, TraceKind::Kernel { .. })), 4);
        assert_eq!(
            count(|k| matches!(k, TraceKind::Checkout { .. })),
            stats.chunks
        );
        assert_eq!(
            count(|k| matches!(k, TraceKind::ChunkDone { .. })),
            stats.chunks
        );
    }

    #[test]
    fn collect_timeout_on_healthy_pipeline_returns_rows() {
        let mut pipeline = DiffPipeline::new(2);
        assert!(matches!(
            pipeline.collect_timeout(Duration::from_millis(10)),
            Ok(None),
        ));
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        pipeline.submit(row.clone(), row);
        let got = pipeline
            .collect_timeout(Duration::from_secs(10))
            .expect("healthy worker beats a generous deadline")
            .expect("one row in flight");
        assert!(got.result.unwrap().0.is_empty());
    }

    #[test]
    fn drain_empties_the_pipeline() {
        let mut pipeline = DiffPipeline::new(2);
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        for _ in 0..5 {
            pipeline.submit(row.clone(), row.clone());
        }
        let outcomes = pipeline.drain();
        assert_eq!(outcomes.len(), 5);
        assert_eq!(pipeline.in_flight(), 0);
        assert!(pipeline.drain().is_empty());
    }

    #[test]
    fn batch_deadline_passes_when_workers_are_healthy() {
        let a = img("####....\n..##..##\n#.#.#.#.\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n");
        let mut pipeline = DiffPipelineConfig::new(2)
            .row_deadline(Duration::from_secs(10))
            .build();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_eq!(stats.timeouts, 0);
    }
}
