//! Sharded multi-image executor: the engine under [`crate::DiffPipeline`]
//! and `diffd`, generalized so the schedulable unit is a **job** — one
//! independent image-pair diff (kernel, row-range, source `Arc`s, job id,
//! contiguous ticket range) — instead of a per-batch chunk list drained by
//! a single collector.
//!
//! Many jobs are in flight on one shard set at once. Three layers replace
//! the old per-batch machinery:
//!
//! * **Job-fair scheduling.** Every shard keeps one deque *per job* plus a
//!   round-robin rotation over the job ids present, so chunks from
//!   different jobs interleave: a submitter with four rows gets its turn
//!   between the chunks of a 100 000-row batch instead of queueing behind
//!   all of them. Work-stealing is unchanged (the owner pops the front of
//!   the rotated job's deque, a thief the back), and steals are attributed
//!   to the stolen chunk's job.
//! * **Result routing keyed by job id.** A worker delivers each finished
//!   chunk straight into the owning job's completion state (a mutex +
//!   condvar pair per job) — there is no shared collector loop and no
//!   global pending queue to serialize on. [`JobHandle::collect_next`]
//!   waits on its own job's condvar; concurrent submitters never contend
//!   except on the shard queues themselves.
//! * **Job-granular supervision.** A dedicated supervisor thread ticks
//!   every `SUPERVISION_TICK`, respawns dead workers and recovers the
//!   orphaned chunk from the dead worker's checkout slot — retried, failed
//!   past the retry budget, or written off if its job was already
//!   abandoned. Retries, respawns, timeouts, steals and buffer hits are
//!   counted twice: globally (the lifetime
//!   [`SupervisionCounters`] / metrics) and on the owning job, which is
//!   what makes per-job [`PipelineStats`] exact under interleaving — the
//!   old implementation diffed global counters across a batch and
//!   misattributed any concurrent job's interventions.
//!
//! Abandonment is per job: an expired job drops its queued chunks, writes
//! off the rows a wedged worker still holds, and discards their stale
//! results on arrival — other jobs on the same executor are untouched.
//! The ticket space stays global and monotonic, so a fresh executor still
//! numbers rows `0, 1, 2, …` in submission order and the deterministic
//! fault drills keep addressing rows by ticket.

use crate::engine::kernel::{self, Kernel, KernelChoice, KernelScratch};
use crate::engine::pipeline::{lock, PipelineLoad, RowOutcome, SupervisionCounters, Ticket};
use crate::engine::simd::SimdLevel;
use crate::error::SystolicError;
use crate::image::check_dims;
use crate::obs::{ObsConfig, Observer, TraceKind};
use crate::stats::{ArrayStats, PipelineStats};
use rle::{RleImage, RleRow};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use crate::engine::fault::{Fault, FaultPlan};

/// How often the supervisor thread checks worker liveness (and a blocked
/// worker or collector re-polls — the doorbell backstop).
pub(crate) const SUPERVISION_TICK: Duration = Duration::from_millis(20);

/// The scheduler aims for this many chunks per worker, so stragglers can
/// steal the tail of a job without per-row traffic.
pub(crate) const CHUNKS_PER_WORKER: usize = 4;

/// At most this many spare chunk-result vectors are kept for reuse.
const SPARE_POOL_CAP: usize = 64;

/// Where a chunk's row pairs live. Cloning is `Arc`-cheap in both cases,
/// which is what makes chunk checkout (and retry re-enqueue) free of row
/// copies.
#[derive(Clone)]
pub(crate) enum RowsSource {
    /// Rows owned by this chunk (streaming submits and the borrowing batch
    /// API). `first` is the image row the slice starts at, so sub-chunks
    /// can keep absolute indices.
    Owned {
        rows: Arc<[(RleRow, RleRow)]>,
        first: usize,
    },
    /// Rows shared with the caller's images (the zero-copy batch API).
    /// Indexed by absolute image row.
    Shared { a: Arc<RleImage>, b: Arc<RleImage> },
}

/// One planned chunk of a job, before tickets are allocated.
pub(crate) struct ChunkSpec {
    pub lo: usize,
    pub hi: usize,
    pub source: RowsSource,
}

/// A contiguous chunk of one job's row pairs: the scheduling, checkout and
/// retry unit. Row `i` (for `lo <= i < hi`) carries ticket
/// `base + (i - lo)`, so per-row identity survives chunking; the `job`
/// `Arc` routes every result (and every supervision event) back to the
/// owner.
#[derive(Clone)]
struct Chunk {
    base: u64,
    lo: usize,
    hi: usize,
    attempts: u32,
    source: RowsSource,
    job: Arc<JobState>,
}

impl Chunk {
    fn len(&self) -> usize {
        self.hi - self.lo
    }

    fn ticket_of(&self, i: usize) -> u64 {
        self.base + (i - self.lo) as u64
    }

    fn row(&self, i: usize) -> (&RleRow, &RleRow) {
        match &self.source {
            RowsSource::Owned { rows, first } => {
                let pair = &rows[i - first];
                (&pair.0, &pair.1)
            }
            RowsSource::Shared { a, b } => (&a.rows()[i], &b.rows()[i]),
        }
    }

    /// A sub-chunk over `[lo, hi)` keeping this chunk's attempt count,
    /// per-row tickets and job.
    fn slice(&self, lo: usize, hi: usize) -> Chunk {
        Chunk {
            base: self.base + (lo - self.lo) as u64,
            lo,
            hi,
            attempts: self.attempts,
            source: self.source.clone(),
            job: Arc::clone(&self.job),
        }
    }
}

/// One row's result inside a chunk delivery.
struct RowResult {
    ticket: u64,
    kernel: Option<KernelChoice>,
    result: Result<(RleRow, ArrayStats), SystolicError>,
}

/// Mutable completion state of one job, guarded by the job's mutex.
struct JobInner {
    /// Delivered rows not yet popped by [`JobHandle::collect_next`].
    pending: VecDeque<RowOutcome>,
    /// Rows submitted but not yet delivered (queued, checked out, or held
    /// by a wedged worker).
    undelivered: usize,
    /// The job was abandoned: stale deliveries are discarded on arrival.
    abandoned: bool,
    /// All rows were delivered (ledger jobs only; guards the
    /// `jobs_completed` count against double-fire).
    completed: bool,
    /// Wedged rows a worker still holds for this abandoned job; each one
    /// decrements on (discarded) arrival or orphan recovery.
    stale: usize,
    /// Which worker slots delivered at least one successful row.
    seen: Vec<bool>,
}

/// One job: identity, ticket range, completion state and per-job
/// supervision attribution.
struct JobState {
    id: u64,
    lo: u64,
    hi: u64,
    /// Chunks the job was planned into (0 for the streaming job, whose
    /// rows are single-row chunks ticketed individually).
    chunks: usize,
    /// Whether this job participates in the batch/job ledgers
    /// (`batches`, `jobs_submitted`, …); the streaming front end's
    /// persistent job does not.
    ledger: bool,
    created: Instant,
    /// Nanoseconds from job creation to the first chunk checkout, plus one
    /// (0 = no chunk checked out yet). The submit→first-dispatch delay is
    /// the executor's honest "queue wait": time the job spent waiting for
    /// a worker, as opposed to computing.
    first_checkout_ns: AtomicU64,
    retries: AtomicU64,
    respawns: AtomicU64,
    timeouts: AtomicU64,
    steals: AtomicU64,
    buffer_hits: AtomicU64,
    inner: Mutex<JobInner>,
    bell: Condvar,
}

impl JobState {
    fn rows(&self) -> u64 {
        self.hi - self.lo
    }

    fn stamp_checkout(&self) {
        if self.first_checkout_ns.load(Ordering::Relaxed) == 0 {
            let ns = (self.created.elapsed().as_nanos() as u64).saturating_add(1);
            let _ = self.first_checkout_ns.compare_exchange(
                0,
                ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }
}

/// Per-shard queue state: one deque per job plus a round-robin rotation
/// over the job ids present, so a pop services jobs in turn instead of
/// first-come-first-drained.
#[derive(Default)]
struct JobQueues {
    /// Rotation order; an id is present iff its deque is non-empty, once.
    order: VecDeque<u64>,
    queues: HashMap<u64, VecDeque<Chunk>>,
}

impl JobQueues {
    fn push(&mut self, chunk: Chunk) {
        let id = chunk.job.id;
        let queue = self.queues.entry(id).or_default();
        if queue.is_empty() {
            self.order.push_back(id);
        }
        queue.push_back(chunk);
    }

    /// Pops one chunk, rotating the job order: the owner takes the front
    /// of the next job's deque, a thief the back.
    fn pop(&mut self, own: bool) -> Option<Chunk> {
        let id = self.order.pop_front()?;
        let queue = self.queues.get_mut(&id).expect("ordered job is queued");
        let chunk = if own {
            queue.pop_front()
        } else {
            queue.pop_back()
        };
        if queue.is_empty() {
            self.queues.remove(&id);
        } else {
            self.order.push_back(id);
        }
        chunk
    }

    /// Drops every queued chunk of `job`; returns `(chunks, rows)`
    /// dropped.
    fn remove_job(&mut self, job: u64) -> (usize, usize) {
        let Some(queue) = self.queues.remove(&job) else {
            return (0, 0);
        };
        self.order.retain(|&id| id != job);
        let rows = queue.iter().map(Chunk::len).sum();
        (queue.len(), rows)
    }
}

/// One worker's slice of the scheduler: its job-fair input queues and its
/// checkout slot, each behind its own short-lived lock.
#[derive(Default)]
struct Shard {
    queue: Mutex<JobQueues>,
    /// The chunk this worker is currently processing, parked here so the
    /// supervisor can recover it if the thread dies mid-chunk.
    running: Mutex<Option<Chunk>>,
}

struct Shared {
    shards: Vec<Shard>,
    /// Chunks sitting in shard queues (fast-path emptiness check for
    /// workers; mutated inside the owning shard's queue lock).
    queued: AtomicUsize,
    /// Rows submitted but not yet collected or written off, across all
    /// jobs.
    in_flight: AtomicUsize,
    /// Rows delivered to a live job but not yet collected.
    ready_rows: AtomicUsize,
    /// Rows written off by abandoned jobs whose stale results are still
    /// outstanding; drains back to 0 as they arrive or are recovered.
    abandoned_rows: AtomicUsize,
    next_ticket: AtomicU64,
    next_job_id: AtomicU64,
    /// Round-robin cursor dealing chunks across the shards.
    submit_cursor: AtomicUsize,
    shutdown: AtomicBool,
    /// Doorbell for workers: producers notify while holding the bell, and
    /// sleepers re-check `queued` under it, so a push can never slip
    /// between a worker's check and its wait.
    work_bell: Mutex<()>,
    work_ready: Condvar,
    /// The supervisor's private bell, so a streaming submit's `notify_one`
    /// can never be swallowed by the supervisor instead of a worker.
    sup_bell: Mutex<()>,
    sup_ready: Condvar,
    retries: AtomicU64,
    respawns: AtomicU64,
    timeouts: AtomicU64,
    /// Chunks popped from a sibling shard's queue (tail rebalancing).
    steals: AtomicU64,
    /// Chunk-result vectors recycled back to workers.
    spare: Mutex<Vec<Vec<RowResult>>>,
    /// How many times a worker got a recycled vector instead of
    /// allocating.
    buffer_hits: AtomicU64,
    kernel: Kernel,
    /// Resolved SIMD level every worker's kernel scratch is built with.
    simd: SimdLevel,
    /// Chunk-weight target for `submit_pair` plans.
    chunk_target: Option<usize>,
    retry_limit: u32,
    /// Worker thread handles, shared between the supervisor (respawns)
    /// and `Drop` (joins). Indexed by worker slot.
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Observability sink, shared by workers, supervisor and collectors.
    /// `None` keeps every recording site to a single predictable branch.
    obs: Option<Arc<Observer>>,
    #[cfg(feature = "fault-injection")]
    faults: Option<FaultPlan>,
}

impl Shared {
    /// Enqueues a chunk onto `shard`'s queues. The queue count and depth
    /// gauge move inside the same critical section as the push, so
    /// neither can drift from the queues' true contents.
    fn push_chunk(&self, shard: usize, chunk: Chunk) {
        let mut queue = lock(&self.shards[shard].queue);
        queue.push(chunk);
        self.queued.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.metrics.queue_depth.add(1);
        }
    }

    fn pop_shard(&self, shard: usize, own: bool) -> Option<Chunk> {
        let mut queue = lock(&self.shards[shard].queue);
        let chunk = queue.pop(own);
        if chunk.is_some() {
            self.queued.fetch_sub(1, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.metrics.queue_depth.sub(1);
            }
        }
        chunk
    }

    /// One non-blocking attempt to find work for `worker`: its own shard
    /// first, then each sibling in ring order (a steal, attributed to the
    /// stolen chunk's job).
    fn try_pop(&self, worker: usize) -> Option<Chunk> {
        if self.queued.load(Ordering::Relaxed) == 0 {
            return None;
        }
        if let Some(chunk) = self.pop_shard(worker, true) {
            return Some(chunk);
        }
        let n = self.shards.len();
        for d in 1..n {
            if let Some(chunk) = self.pop_shard((worker + d) % n, false) {
                self.steals.fetch_add(1, Ordering::Relaxed);
                chunk.job.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.metrics.chunks_stolen.inc();
                }
                return Some(chunk);
            }
        }
        None
    }

    /// Blocks until a chunk is available for `worker` or shutdown is
    /// requested. The doorbell re-check plus tick timeout make a lost
    /// wakeup impossible to get stuck on.
    fn next_chunk(&self, worker: usize) -> Option<Chunk> {
        loop {
            if let Some(chunk) = self.try_pop(worker) {
                return Some(chunk);
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            let bell = lock(&self.work_bell);
            if self.queued.load(Ordering::Relaxed) > 0 {
                continue; // work arrived between the pop and the bell
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            let _unused = self
                .work_ready
                .wait_timeout(bell, SUPERVISION_TICK)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn notify_work_all(&self) {
        let _bell = lock(&self.work_bell);
        self.work_ready.notify_all();
    }

    fn notify_work_one(&self) {
        let _bell = lock(&self.work_bell);
        self.work_ready.notify_one();
    }

    fn counters(&self) -> SupervisionCounters {
        SupervisionCounters {
            retries: self.retries.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }

    fn take_spare(&self, job: &JobState) -> Vec<RowResult> {
        let recycled = lock(&self.spare).pop();
        match recycled {
            Some(vec) => {
                self.buffer_hits.fetch_add(1, Ordering::Relaxed);
                job.buffer_hits.fetch_add(1, Ordering::Relaxed);
                vec
            }
            None => Vec::new(),
        }
    }

    fn return_spare(&self, mut vec: Vec<RowResult>) {
        vec.clear();
        if vec.capacity() == 0 {
            return;
        }
        let mut pool = lock(&self.spare);
        if pool.len() < SPARE_POOL_CAP {
            pool.push(vec);
        }
    }

    fn gauge_in_flight(&self, delta: i64) {
        if let Some(obs) = &self.obs {
            obs.metrics.in_flight.add(delta);
        }
    }

    /// Routes one finished chunk to its owning job: live rows join the
    /// job's pending queue (ringing its bell); rows of an abandoned job
    /// are discarded here, never delivered — the result-isolation
    /// invariant. The result vector is recycled afterwards.
    fn deliver(&self, worker: usize, job: &Arc<JobState>, mut results: Vec<RowResult>) {
        {
            let mut inner = lock(&job.inner);
            if inner.abandoned {
                for row in results.drain(..) {
                    inner.stale = inner.stale.saturating_sub(1);
                    decrement(&self.abandoned_rows);
                    // Only successfully diffed rows entered `rows_diffed`;
                    // booking errored rows as discarded would unbalance
                    // the `rows_diffed == rows_completed + rows_discarded`
                    // ledger.
                    if row.result.is_ok() {
                        if let Some(obs) = &self.obs {
                            obs.metrics.rows_discarded.inc();
                        }
                    }
                }
            } else {
                let n = results.len();
                let mut any_ok = false;
                for row in results.drain(..) {
                    if let Some(obs) = &self.obs {
                        if row.result.is_ok() {
                            obs.metrics.rows_completed.inc();
                        } else {
                            obs.metrics.rows_errored.inc();
                        }
                    }
                    any_ok |= row.result.is_ok();
                    inner.pending.push_back(RowOutcome {
                        ticket: Ticket::from_id(row.ticket),
                        worker,
                        kernel: row.kernel,
                        result: row.result,
                    });
                }
                if any_ok {
                    inner.seen[worker] = true;
                }
                inner.undelivered -= n;
                self.ready_rows.fetch_add(n, Ordering::Relaxed);
                if inner.undelivered == 0 && job.ledger && !inner.completed {
                    inner.completed = true;
                    if let Some(obs) = &self.obs {
                        obs.metrics.jobs_completed.inc();
                        obs.record(TraceKind::JobDone {
                            job: job.id,
                            rows: job.rows(),
                        });
                    }
                }
                job.bell.notify_all();
            }
        }
        self.return_spare(results);
    }
}

/// `fetch_sub(1)` clamped at zero (mirrors the old collector's
/// `saturating_sub` robustness against double write-offs).
fn decrement(counter: &AtomicUsize) {
    let _ = counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
}

/// Configuration for a [`DiffExecutor`]: the engine-level subset of
/// [`crate::DiffPipelineConfig`] (the pipeline facade maps the rest —
/// deadlines, chunk targets, the signature prefilter — onto jobs itself).
#[derive(Clone, Debug)]
pub struct DiffExecutorConfig {
    /// Worker threads in the pool (must be > 0).
    pub threads: usize,
    /// Extra attempts a chunk is granted after a worker panic or death.
    pub retry_limit: u32,
    /// How long [`Drop`] waits for workers before detaching wedged
    /// threads.
    pub shutdown_grace: Duration,
    /// Kernel policy workers diff rows with.
    pub kernel: Kernel,
    /// SIMD level override (`None` = env / runtime detection).
    pub simd: Option<SimdLevel>,
    /// Target scheduling weight per chunk for [`DiffExecutor::submit_pair`]
    /// plans, in input runs (`None` derives it per job; see
    /// [`plan_ranges`]).
    pub chunk_target: Option<usize>,
    /// Observability: attach an [`Observer`] to the executor.
    pub observe: Option<ObsConfig>,
    /// Deterministic fault schedule for tests.
    #[cfg(feature = "fault-injection")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for DiffExecutorConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            retry_limit: 2,
            shutdown_grace: Duration::from_millis(500),
            kernel: Kernel::Auto,
            simd: None,
            chunk_target: None,
            observe: None,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }
}

impl DiffExecutorConfig {
    /// A default configuration over `threads` workers.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Builds the executor described by this configuration.
    #[must_use]
    pub fn build(self) -> DiffExecutor {
        DiffExecutor::new(self)
    }
}

/// Everything [`DiffExecutor::diff_pair`] reports about one finished job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's id (monotonic per executor).
    pub job: u64,
    /// The contiguous ticket range `[lo, hi)` the job's rows occupied.
    pub tickets: (u64, u64),
    /// The reassembled diff image.
    pub image: RleImage,
    /// Per-job statistics — retries, respawns, steals and buffer hits are
    /// attributed to *this* job only, exact under interleaving.
    pub stats: PipelineStats,
    /// Submission → first chunk checkout: time the job waited for a
    /// worker (the executor-level replacement for the old pipeline-mutex
    /// wait).
    pub queue_wait: Duration,
}

/// A supervised, shard-scheduled worker pool that runs many independent
/// image-pair jobs concurrently (see the module docs). All methods take
/// `&self`: an `Arc<DiffExecutor>` can be submitted to and collected from
/// by any number of threads with no outer lock.
pub struct DiffExecutor {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    shutdown_grace: Duration,
}

impl std::fmt::Debug for DiffExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffExecutor")
            .field("workers", &self.workers())
            .field("in_flight", &self.in_flight())
            .field("abandoned", &self.abandoned())
            .field("counters", &self.shared.counters())
            .finish()
    }
}

impl DiffExecutor {
    /// Spawns the worker pool and its supervisor.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0`.
    #[must_use]
    pub fn new(config: DiffExecutorConfig) -> Self {
        assert!(config.threads > 0, "need at least one thread");
        let obs = config.observe.map(|cfg| Arc::new(Observer::new(cfg)));
        let simd = config.simd.map_or_else(SimdLevel::default_level, |level| {
            SimdLevel::resolve(Some(level))
        });
        let shared = Arc::new(Shared {
            shards: (0..config.threads).map(|_| Shard::default()).collect(),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            ready_rows: AtomicUsize::new(0),
            abandoned_rows: AtomicUsize::new(0),
            next_ticket: AtomicU64::new(0),
            next_job_id: AtomicU64::new(0),
            submit_cursor: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            work_bell: Mutex::new(()),
            work_ready: Condvar::new(),
            sup_bell: Mutex::new(()),
            sup_ready: Condvar::new(),
            retries: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            spare: Mutex::new(Vec::new()),
            buffer_hits: AtomicU64::new(0),
            kernel: config.kernel,
            simd,
            chunk_target: config.chunk_target,
            retry_limit: config.retry_limit,
            handles: Mutex::new(Vec::new()),
            obs,
            #[cfg(feature = "fault-injection")]
            faults: config.fault_plan,
        });
        *lock(&shared.handles) = (0..config.threads)
            .map(|worker| spawn_worker(&shared, worker))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(&shared))
        };
        Self {
            shared,
            supervisor: Some(supervisor),
            shutdown_grace: config.shutdown_grace,
        }
    }

    /// Number of worker slots in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.shards.len()
    }

    /// The SIMD level the pool's kernels resolved to.
    #[must_use]
    pub fn simd_level(&self) -> SimdLevel {
        self.shared.simd
    }

    /// The kernel policy workers diff rows with.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.shared.kernel
    }

    /// The executor's [`Observer`], if observability was enabled. The
    /// `Arc` stays valid after the executor is dropped.
    #[must_use]
    pub fn observer(&self) -> Option<Arc<Observer>> {
        self.shared.obs.clone()
    }

    pub(crate) fn obs(&self) -> Option<&Arc<Observer>> {
        self.shared.obs.as_ref()
    }

    /// Lifetime supervision totals across every job.
    #[must_use]
    pub fn counters(&self) -> SupervisionCounters {
        self.shared.counters()
    }

    /// Rows submitted but not yet collected or written off, across all
    /// jobs.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Rows written off by abandoned jobs whose stale results are still
    /// outstanding; drains back to 0 as they arrive or are recovered.
    #[must_use]
    pub fn abandoned(&self) -> usize {
        self.shared.abandoned_rows.load(Ordering::Relaxed)
    }

    /// The ticket the next submitted row will receive (global, monotonic
    /// across all jobs).
    #[must_use]
    pub fn next_ticket(&self) -> u64 {
        self.shared.next_ticket.load(Ordering::Relaxed)
    }

    /// A point-in-time load snapshot — the admission-control hook.
    /// `ready_chunks` reports delivered-but-uncollected *rows* under the
    /// executor (the old per-batch collector counted swept chunk
    /// messages); an idle executor reports all four fields zero either
    /// way.
    #[must_use]
    pub fn load(&self) -> PipelineLoad {
        PipelineLoad {
            queued_chunks: self.shared.queued.load(Ordering::Relaxed),
            ready_chunks: self.shared.ready_rows.load(Ordering::Relaxed),
            in_flight_rows: self.in_flight(),
            abandoned_rows: self.abandoned(),
        }
    }

    /// Creates the persistent non-ledger job the streaming front end
    /// pushes single-row chunks through.
    pub(crate) fn streaming_job(&self) -> JobHandle {
        let id = self.shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        let lo = self.next_ticket();
        JobHandle {
            job: Arc::new(self.new_job_state(id, lo, lo, 0, false)),
            shared: Arc::clone(&self.shared),
        }
    }

    fn new_job_state(&self, id: u64, lo: u64, hi: u64, chunks: usize, ledger: bool) -> JobState {
        JobState {
            id,
            lo,
            hi,
            chunks,
            ledger,
            created: Instant::now(),
            first_checkout_ns: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            buffer_hits: AtomicU64::new(0),
            inner: Mutex::new(JobInner {
                pending: VecDeque::new(),
                undelivered: (hi - lo) as usize,
                abandoned: false,
                completed: false,
                stale: 0,
                seen: vec![false; self.shared.shards.len()],
            }),
            bell: Condvar::new(),
        }
    }

    /// Submits one job: allocates its id and a contiguous ticket range,
    /// records the submit ledger, and deals the chunks round-robin across
    /// the shards. Chunks must cover disjoint ascending row ranges; row
    /// `specs[j].lo + k` gets the ticket after all rows before it in spec
    /// order.
    pub(crate) fn submit_job(&self, specs: Vec<ChunkSpec>) -> JobHandle {
        let rows: usize = specs.iter().map(|s| s.hi - s.lo).sum();
        let id = self.shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        let lo = self
            .shared
            .next_ticket
            .fetch_add(rows as u64, Ordering::Relaxed);
        let job = Arc::new(self.new_job_state(id, lo, lo + rows as u64, specs.len(), true));
        let mut chunks = Vec::with_capacity(specs.len());
        let mut base = lo;
        for spec in specs {
            let chunk = Chunk {
                base,
                lo: spec.lo,
                hi: spec.hi,
                attempts: 0,
                source: spec.source,
                job: Arc::clone(&job),
            };
            base += chunk.len() as u64;
            chunks.push(chunk);
        }
        if let Some(obs) = &self.shared.obs {
            obs.metrics.batches.inc();
            obs.metrics.jobs_submitted.inc();
            obs.metrics.rows_submitted.add(rows as u64);
            obs.metrics.chunks_dispatched.add(chunks.len() as u64);
            obs.record(TraceKind::JobSubmit {
                job: id,
                rows: rows as u64,
            });
            // Submit events precede the enqueue so every row's causal
            // chain starts before any worker can check its chunk out.
            for chunk in &chunks {
                for i in chunk.lo..chunk.hi {
                    obs.record(TraceKind::Submit {
                        ticket: chunk.ticket_of(i),
                    });
                }
            }
        }
        self.shared.in_flight.fetch_add(rows, Ordering::Relaxed);
        self.shared.gauge_in_flight(rows as i64);
        if rows == 0 {
            // Nothing will ever be delivered; complete the job here.
            let mut inner = lock(&job.inner);
            inner.completed = true;
            if let Some(obs) = &self.shared.obs {
                obs.metrics.jobs_completed.inc();
                obs.record(TraceKind::JobDone { job: id, rows: 0 });
            }
        }
        let shards = self.shared.shards.len();
        for chunk in chunks {
            let shard = self.shared.submit_cursor.fetch_add(1, Ordering::Relaxed) % shards;
            self.shared.push_chunk(shard, chunk);
        }
        self.shared.notify_work_all();
        JobHandle {
            job,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Plans and submits one image pair as a job (zero-copy shared
    /// sources, derived chunk target) without waiting for it. The caller
    /// collects through the returned [`JobHandle`]; many submitters can
    /// do this concurrently on one executor.
    pub fn submit_pair(
        &self,
        a: &Arc<RleImage>,
        b: &Arc<RleImage>,
    ) -> Result<JobHandle, SystolicError> {
        check_dims(a, b)?;
        let ranges = plan_ranges(a, b, None, self.shared.chunk_target, self.workers());
        let specs = ranges
            .into_iter()
            .map(|(lo, hi)| ChunkSpec {
                lo,
                hi,
                source: RowsSource::Shared {
                    a: Arc::clone(a),
                    b: Arc::clone(b),
                },
            })
            .collect();
        Ok(self.submit_job(specs))
    }

    /// Diffs one image pair end to end: plan, submit, collect,
    /// reassemble. This is the request-sized entry point `diffd` sessions
    /// call concurrently — no outer mutex; fairness and isolation come
    /// from the job machinery. A `budget` bounds the whole job; on expiry
    /// the job is abandoned (other jobs unaffected) and
    /// [`SystolicError::DeadlineExceeded`] returned.
    pub fn diff_pair(
        &self,
        a: &Arc<RleImage>,
        b: &Arc<RleImage>,
        budget: Option<Duration>,
    ) -> Result<JobOutcome, SystolicError> {
        let start = Instant::now();
        let deadline = budget.map(|d| start + d);
        let handle = self.submit_pair(a, b)?;
        let (lo, _hi) = handle.tickets();
        let height = a.height();
        let mut rows: Vec<Option<RleRow>> = vec![None; height];
        let mut stats = PipelineStats {
            workers: self.workers(),
            chunks: handle.chunks(),
            row_clones_avoided: 4 * height as u64,
            ..Default::default()
        };
        let mut first_err: Option<SystolicError> = None;
        loop {
            match handle.collect_next(deadline) {
                Ok(Some(outcome)) => match outcome.result {
                    Ok((row, row_stats)) => {
                        stats.totals.absorb(&row_stats);
                        stats.max_row_iterations =
                            stats.max_row_iterations.max(row_stats.iterations);
                        stats.rows += 1;
                        match outcome.kernel {
                            Some(KernelChoice::FastPath) => stats.rows_fast_path += 1,
                            Some(KernelChoice::Rle) => stats.rows_rle_kernel += 1,
                            Some(KernelChoice::Packed) => stats.rows_packed_kernel += 1,
                            Some(KernelChoice::Systolic) => stats.rows_systolic_kernel += 1,
                            None => {}
                        }
                        let idx = usize::try_from(outcome.ticket.id() - lo).expect("ticket fits");
                        rows[idx] = Some(row);
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    handle.abandon();
                    return Err(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        handle.fill_supervision(&mut stats);
        stats.wall = start.elapsed();
        let rows: Vec<RleRow> = rows
            .into_iter()
            .map(|r| r.expect("every row collected"))
            .collect();
        let image = RleImage::from_rows(a.width(), rows).expect("row widths preserved");
        Ok(JobOutcome {
            job: handle.id(),
            tickets: handle.tickets(),
            image,
            stats,
            queue_wait: handle.queue_wait().unwrap_or_default(),
        })
    }
}

impl Drop for DiffExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.notify_work_all();
        {
            let _bell = lock(&self.shared.sup_bell);
            self.shared.sup_ready.notify_all();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Join workers that exit within the grace period; detach the rest
        // (e.g. a wedged worker mid-stall) so Drop can never deadlock. A
        // detached worker sees the shutdown flag and exits as soon as it
        // unwedges; the Arc keeps its shared state alive until then.
        let deadline = Instant::now() + self.shutdown_grace;
        for handle in lock(&self.shared.handles).drain(..) {
            while !handle.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
    }
}

/// One submitted job's collection side: results route here and nowhere
/// else. The handle is `Send` — a submitter thread can hand it off — and
/// every method takes `&self`.
pub struct JobHandle {
    job: Arc<JobState>,
    shared: Arc<Shared>,
}

impl JobHandle {
    /// The job's id (monotonic per executor).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The contiguous ticket range `[lo, hi)` allocated to this job's
    /// rows (batch jobs; the streaming job tickets rows individually).
    #[must_use]
    pub fn tickets(&self) -> (u64, u64) {
        (self.job.lo, self.job.hi)
    }

    /// Chunks the job was planned into.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.job.chunks
    }

    /// Rows of this job not yet collected (delivered or still working).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        let inner = lock(&self.job.inner);
        inner.pending.len() + inner.undelivered
    }

    /// Submission → first chunk checkout, if a worker has started.
    #[must_use]
    pub fn queue_wait(&self) -> Option<Duration> {
        match self.job.first_checkout_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns - 1)),
        }
    }

    /// Copies this job's supervision attribution into `stats` — exact for
    /// this job even when other jobs were interleaving on the same shard
    /// set (the old global-counter-delta approach misattributed those).
    pub(crate) fn fill_supervision(&self, stats: &mut PipelineStats) {
        stats.retries = self.job.retries.load(Ordering::Relaxed);
        stats.respawns = self.job.respawns.load(Ordering::Relaxed);
        stats.timeouts = self.job.timeouts.load(Ordering::Relaxed);
        stats.chunks_stolen = self.job.steals.load(Ordering::Relaxed);
        stats.buffers_reused = self.job.buffer_hits.load(Ordering::Relaxed);
        stats.effective_workers = self.effective_workers();
    }

    /// Worker slots that delivered at least one successful row for this
    /// job.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        lock(&self.job.inner).seen.iter().filter(|s| **s).count()
    }

    /// Per-job supervision counters.
    #[must_use]
    pub fn supervision(&self) -> SupervisionCounters {
        SupervisionCounters {
            retries: self.job.retries.load(Ordering::Relaxed),
            respawns: self.job.respawns.load(Ordering::Relaxed),
            timeouts: self.job.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Chunks of this job popped by a non-owning shard (tail
    /// rebalancing), attributed to this job alone.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.job.steals.load(Ordering::Relaxed)
    }

    /// Enqueues one row pair as a single-row chunk of this (streaming)
    /// job; returns the row's [`Ticket`]. Never blocks.
    pub(crate) fn submit_row(&self, a: RleRow, b: RleRow) -> Ticket {
        let ticket = self.shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = lock(&self.job.inner);
            inner.undelivered += 1;
        }
        if let Some(obs) = &self.shared.obs {
            obs.metrics.rows_submitted.inc();
            obs.metrics.chunks_dispatched.inc();
            obs.record(TraceKind::Submit { ticket });
        }
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        self.shared.gauge_in_flight(1);
        let chunk = Chunk {
            base: ticket,
            lo: 0,
            hi: 1,
            attempts: 0,
            source: RowsSource::Owned {
                rows: Arc::from(vec![(a, b)]),
                first: 0,
            },
            job: Arc::clone(&self.job),
        };
        let shards = self.shared.shards.len();
        let shard = self.shared.submit_cursor.fetch_add(1, Ordering::Relaxed) % shards;
        self.shared.push_chunk(shard, chunk);
        self.shared.notify_work_one();
        Ticket::from_id(ticket)
    }

    /// Blocks for this job's next completed row, in completion order.
    /// `Ok(None)` means the job has no rows outstanding. With a
    /// `deadline`, gives up at that instant with
    /// [`SystolicError::DeadlineExceeded`] — the rows stay in flight
    /// (their worker may still deliver them later); the caller can keep
    /// collecting or [`Self::abandon`] the job.
    pub fn collect_next(
        &self,
        deadline: Option<Instant>,
    ) -> Result<Option<RowOutcome>, SystolicError> {
        let start = Instant::now();
        let mut inner = lock(&self.job.inner);
        loop {
            if let Some(outcome) = inner.pending.pop_front() {
                drop(inner);
                decrement(&self.shared.in_flight);
                decrement(&self.shared.ready_rows);
                self.shared.gauge_in_flight(-1);
                return Ok(Some(outcome));
            }
            if inner.undelivered == 0 {
                return Ok(None);
            }
            let now = Instant::now();
            if let Some(d) = deadline {
                if now >= d {
                    let in_flight = inner.undelivered;
                    drop(inner);
                    self.shared.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.job.timeouts.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = &self.shared.obs {
                        obs.metrics.timeouts.inc();
                        obs.record(TraceKind::Timeout {
                            in_flight: in_flight as u64,
                        });
                    }
                    return Err(SystolicError::DeadlineExceeded {
                        waited: start.elapsed(),
                        in_flight,
                    });
                }
            }
            let wait = deadline.map_or(SUPERVISION_TICK, |d| {
                SUPERVISION_TICK.min(d.saturating_duration_since(now))
            });
            let (guard, _timed_out) = self
                .job
                .bell
                .wait_timeout(inner, wait)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Abandons this job. Queued-but-unstarted chunks are dropped; rows
    /// still held by a (possibly wedged) worker are written off behind
    /// the job's abandoned flag, so their eventual stale delivery is
    /// discarded on arrival and no other job can ever receive them.
    /// Uncollected pending rows are dropped too. The executor (and every
    /// other job) is unaffected.
    pub fn abandon(&self) {
        let mut dropped_chunks = 0usize;
        let mut dropped_rows = 0usize;
        for shard in &self.shared.shards {
            let (chunks, rows) = lock(&shard.queue).remove_job(self.job.id);
            dropped_chunks += chunks;
            dropped_rows += rows;
        }
        if dropped_chunks > 0 {
            self.shared
                .queued
                .fetch_sub(dropped_chunks, Ordering::Relaxed);
            if let Some(obs) = &self.shared.obs {
                obs.metrics.queue_depth.sub(dropped_chunks as i64);
            }
        }
        let mut inner = lock(&self.job.inner);
        if inner.abandoned {
            return;
        }
        let pending_rows = inner.pending.len();
        let undelivered = inner.undelivered;
        // Rows neither queued nor pending are held by a worker (possibly
        // wedged): they become stale and are discarded on arrival.
        let wedged = undelivered - dropped_rows;
        inner.pending.clear();
        inner.undelivered = 0;
        if undelivered > 0 {
            inner.abandoned = true;
            inner.stale += wedged;
        }
        drop(inner);
        self.shared
            .in_flight
            .fetch_sub(pending_rows + undelivered, Ordering::Relaxed);
        self.shared
            .gauge_in_flight(-((pending_rows + undelivered) as i64));
        if pending_rows > 0 {
            self.shared
                .ready_rows
                .fetch_sub(pending_rows, Ordering::Relaxed);
        }
        if undelivered == 0 {
            // All rows were delivered (and counted completed/errored);
            // dropping the uncollected remainder writes off nothing.
            return;
        }
        self.shared
            .abandoned_rows
            .fetch_add(wedged, Ordering::Relaxed);
        // Ledger: dropped rows never ran and wedged rows will be
        // discarded on arrival, so neither can ever reach
        // `rows_completed` / `rows_errored`; booking them here closes
        // `rows_submitted == rows_completed + rows_errored + rows_abandoned`.
        if let Some(obs) = &self.shared.obs {
            obs.metrics
                .rows_abandoned
                .add((dropped_rows + wedged) as u64);
            if self.job.ledger {
                obs.metrics.jobs_abandoned.inc();
            }
        }
    }
}

/// Splits `[0, height)` into contiguous row ranges whose summed weight
/// (`k1 + k2 + 1`, so empty rows still make progress) reaches
/// `target_override` or the derived target
/// `total / (workers * CHUNKS_PER_WORKER)`. Rows with `resolved[i]` set
/// are excluded (they break ranges). A *derived* plan is split further
/// until it holds at least one range per worker, so a single heavy row
/// cannot idle the rest of the pool.
pub(crate) fn plan_ranges(
    a: &RleImage,
    b: &RleImage,
    resolved: Option<&[bool]>,
    target_override: Option<usize>,
    workers: usize,
) -> Vec<(usize, usize)> {
    let height = a.height();
    let excluded = |i: usize| resolved.is_some_and(|r| r[i]);
    let weight = |i: usize| a.rows()[i].run_count() + b.rows()[i].run_count() + 1;
    let target = target_override
        .unwrap_or_else(|| {
            let total: usize = (0..height).filter(|&i| !excluded(i)).map(weight).sum();
            total / (workers * CHUNKS_PER_WORKER).max(1)
        })
        .max(1);
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut submitted = 0usize;
    let mut lo = 0usize;
    let mut acc = 0usize;
    for i in 0..height {
        if excluded(i) {
            if lo < i {
                ranges.push((lo, i));
                submitted += i - lo;
            }
            lo = i + 1;
            acc = 0;
            continue;
        }
        acc += weight(i);
        if acc >= target || i + 1 == height {
            ranges.push((lo, i + 1));
            submitted += i + 1 - lo;
            lo = i + 1;
            acc = 0;
        }
    }
    if target_override.is_none() {
        let want = workers.min(submitted);
        while ranges.len() < want {
            let Some(idx) = ranges
                .iter()
                .enumerate()
                .filter(|(_, (lo, hi))| hi - lo >= 2)
                .max_by_key(|(_, (lo, hi))| hi - lo)
                .map(|(idx, _)| idx)
            else {
                break;
            };
            let (lo, hi) = ranges.remove(idx);
            let mid = lo + (hi - lo) / 2;
            ranges.insert(idx, (mid, hi));
            ranges.insert(idx, (lo, mid));
        }
    }
    ranges
}

fn spawn_worker(shared: &Arc<Shared>, worker: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || worker_loop(&shared, worker))
}

/// The supervisor: ticks until shutdown, replacing dead worker threads
/// and recovering the chunks they held. Workers only exit voluntarily
/// once `shutdown` is set, so any finished handle seen here is a
/// casualty.
fn supervisor_loop(shared: &Arc<Shared>) {
    loop {
        {
            let bell = lock(&shared.sup_bell);
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let _unused = shared
                .sup_ready
                .wait_timeout(bell, SUPERVISION_TICK)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        supervise(shared);
    }
}

fn supervise(shared: &Arc<Shared>) {
    let mut handles = lock(&shared.handles);
    for worker in 0..handles.len() {
        if !handles[worker].is_finished() {
            continue;
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Take the orphan before the replacement starts so the new thread
        // can never race us for the slot.
        let orphan = lock(&shared.shards[worker].running).take();
        let replacement = spawn_worker(shared, worker);
        let dead = std::mem::replace(&mut handles[worker], replacement);
        let _ = dead.join();
        shared.respawns.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &shared.obs {
            obs.metrics.respawns.inc();
            obs.record(TraceKind::Respawn {
                worker: worker as u32,
            });
        }
        let Some(chunk) = orphan else {
            continue;
        };
        chunk.job.respawns.fetch_add(1, Ordering::Relaxed);
        recover_orphan(shared, worker, chunk);
    }
}

/// Re-enqueues, fails, or writes off the chunk recovered from a dead
/// worker's checkout slot — at job granularity: an abandoned job's orphan
/// is written off against that job's stale count only.
fn recover_orphan(shared: &Arc<Shared>, worker: usize, mut chunk: Chunk) {
    let job = Arc::clone(&chunk.job);
    {
        let mut inner = lock(&job.inner);
        if inner.abandoned {
            let n = chunk.len();
            inner.stale = inner.stale.saturating_sub(n);
            drop(inner);
            for _ in 0..n {
                decrement(&shared.abandoned_rows);
            }
            return;
        }
    }
    chunk.attempts += 1;
    if chunk.attempts > shared.retry_limit {
        if let Some(obs) = &shared.obs {
            for i in chunk.lo..chunk.hi {
                obs.record(TraceKind::RowFailed {
                    ticket: chunk.ticket_of(i),
                    attempts: chunk.attempts,
                });
            }
        }
        let results = (chunk.lo..chunk.hi)
            .map(|i| RowResult {
                ticket: chunk.ticket_of(i),
                kernel: None,
                result: Err(SystolicError::RowFailed {
                    row: chunk.ticket_of(i),
                    attempts: chunk.attempts,
                    cause: "worker thread died while processing the row".into(),
                }),
            })
            .collect();
        shared.deliver(worker, &job, results);
    } else {
        shared.retries.fetch_add(1, Ordering::Relaxed);
        job.retries.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &shared.obs {
            obs.metrics.retries.inc();
            obs.record(TraceKind::Retry {
                chunk: chunk.base,
                rows: chunk.len() as u32,
                attempt: chunk.attempts,
            });
        }
        shared.push_chunk(worker, chunk);
        shared.notify_work_all();
    }
}

/// A worker: pop chunks from its shard (job-fair, stealing the tail of
/// siblings' when its own runs dry) until shutdown, diffing each row
/// through the configured kernel on persistent per-worker scratch and
/// routing each finished chunk to its owning job.
///
/// Each chunk is parked in the shard's checkout slot before processing
/// (so the supervisor can recover it if this thread dies) and every row
/// runs under `catch_unwind` (so a panicking row costs its chunk one
/// retry, not the worker).
fn worker_loop(shared: &Arc<Shared>, worker: usize) {
    let mut scratch = KernelScratch::with_simd(shared.simd);
    while let Some(chunk) = shared.next_chunk(worker) {
        *lock(&shared.shards[worker].running) = Some(chunk.clone());
        chunk.job.stamp_checkout();
        // Timestamps exist only under observation; the unobserved hot
        // path takes no clock readings at all.
        let chunk_start = shared.obs.as_ref().map(|obs| {
            obs.record(TraceKind::Checkout {
                chunk: chunk.base,
                rows: chunk.len() as u32,
                worker: worker as u32,
                attempt: chunk.attempts,
            });
            Instant::now()
        });

        let mut out = shared.take_spare(&chunk.job);
        out.reserve(chunk.len());
        // Index and panic message of the row that crashed this chunk, if
        // any; rows before it are discarded and recomputed on retry so a
        // chunk's results are all-or-nothing (keeps stats totals exact).
        let mut crashed: Option<(usize, String)> = None;
        for i in chunk.lo..chunk.hi {
            let ticket = chunk.ticket_of(i);

            #[cfg(feature = "fault-injection")]
            let mut injected_panic = false;
            #[cfg(feature = "fault-injection")]
            if let Some(fault) = shared.faults.as_ref().and_then(|plan| plan.take(ticket)) {
                match fault {
                    Fault::Panic => injected_panic = true,
                    Fault::Stall(duration) => std::thread::sleep(duration),
                    // Exit with the chunk still parked in the checkout
                    // slot: the supervisor must notice the dead thread
                    // and recover the orphan. Injected death is
                    // cooperative, so the rows already diffed into `out`
                    // can be booked as discarded (a real crash can't do
                    // this; `rows_discarded` is a lower bound there).
                    Fault::Die => {
                        if let Some(obs) = &shared.obs {
                            obs.metrics.rows_discarded.add(out.len() as u64);
                        }
                        return;
                    }
                    Fault::PoisonLock => {
                        let shared = Arc::clone(shared);
                        let _ = catch_unwind(AssertUnwindSafe(move || {
                            let _guard = lock(&shared.shards[worker].queue);
                            panic!("injected fault: poisoning a shard queue lock");
                        }));
                    }
                }
            }

            let (ra, rb) = chunk.row(i);
            let row_start = shared.obs.as_ref().map(|_| Instant::now());
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                if injected_panic {
                    panic!("injected fault: panic on row {ticket}");
                }
                kernel::diff_row(shared.kernel, &mut scratch, ra, rb)
            }));
            match attempt {
                // Kernel errors (e.g. a width mismatch) are per-row
                // outcomes; the rest of the chunk proceeds.
                Ok(result) => {
                    if let Some(obs) = &shared.obs {
                        match &result {
                            Ok((_, stats, choice)) => {
                                let latency_ns =
                                    row_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                                let runs = (stats.k1 + stats.k2) as u64;
                                obs.metrics.rows_diffed.inc();
                                match choice {
                                    KernelChoice::FastPath => obs.metrics.rows_fast_path.inc(),
                                    KernelChoice::Rle => obs.metrics.rows_rle_kernel.inc(),
                                    KernelChoice::Packed => obs.metrics.rows_packed_kernel.inc(),
                                    KernelChoice::Systolic => {
                                        obs.metrics.rows_systolic_kernel.inc();
                                    }
                                }
                                obs.metrics.row_latency_ns.record(latency_ns);
                                obs.metrics.row_runs.record(runs);
                                obs.record(TraceKind::Kernel {
                                    ticket,
                                    worker: worker as u32,
                                    choice: *choice,
                                    runs,
                                    latency_ns,
                                });
                            }
                            Err(_) => {
                                obs.metrics.rows_kernel_errors.inc();
                                obs.record(TraceKind::RowError { ticket });
                            }
                        }
                    }
                    out.push(RowResult {
                        ticket,
                        kernel: result.as_ref().ok().map(|(_, _, choice)| *choice),
                        result: result.map(|(row, stats, _)| (row, stats)),
                    });
                }
                Err(payload) => {
                    scratch.discard_poisoned();
                    crashed = Some((i, panic_message(payload)));
                    break;
                }
            }
        }

        match crashed {
            None => {
                *lock(&shared.shards[worker].running) = None;
                if let Some(obs) = &shared.obs {
                    let latency_ns = chunk_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    obs.metrics.chunks_completed.inc();
                    obs.metrics.chunk_latency_ns.record(latency_ns);
                    obs.record(TraceKind::ChunkDone {
                        chunk: chunk.base,
                        rows: out.len() as u32,
                        worker: worker as u32,
                        latency_ns,
                    });
                }
                shared.deliver(worker, &chunk.job, out);
            }
            Some((culprit, cause)) => {
                // The partial results are all-or-nothing casualties:
                // their rows were diffed (and counted) but will be
                // diffed again.
                if let Some(obs) = &shared.obs {
                    obs.metrics.rows_discarded.add(out.len() as u64);
                }
                shared.return_spare(out);
                *lock(&shared.shards[worker].running) = None;
                let mut chunk = chunk;
                chunk.attempts += 1;
                if chunk.attempts > shared.retry_limit {
                    // Only the culprit row fails; its siblings go back to
                    // the queue as sub-chunks that keep the attempt count.
                    let ticket = chunk.ticket_of(culprit);
                    if let Some(obs) = &shared.obs {
                        obs.record(TraceKind::RowFailed {
                            ticket,
                            attempts: chunk.attempts,
                        });
                    }
                    let job = Arc::clone(&chunk.job);
                    shared.deliver(
                        worker,
                        &job,
                        vec![RowResult {
                            ticket,
                            kernel: None,
                            result: Err(SystolicError::RowFailed {
                                row: ticket,
                                attempts: chunk.attempts,
                                cause,
                            }),
                        }],
                    );
                    if culprit > chunk.lo {
                        shared.push_chunk(worker, chunk.slice(chunk.lo, culprit));
                    }
                    if culprit + 1 < chunk.hi {
                        shared.push_chunk(worker, chunk.slice(culprit + 1, chunk.hi));
                    }
                    shared.notify_work_all();
                } else {
                    shared.retries.fetch_add(1, Ordering::Relaxed);
                    chunk.job.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = &shared.obs {
                        obs.metrics.retries.inc();
                        obs.record(TraceKind::Retry {
                            chunk: chunk.base,
                            rows: chunk.len() as u32,
                            attempt: chunk.attempts,
                        });
                    }
                    shared.push_chunk(worker, chunk);
                    shared.notify_work_one();
                }
            }
        }
    }
}

/// Best-effort rendering of a caught panic payload, taking ownership so a
/// `String` payload moves out instead of being copied.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic sparse image generator (LCG over gap/len pairs) so
    /// executor unit tests don't depend on the workload crate.
    fn gen_image(width: u32, height: usize, seed: u64) -> RleImage {
        let mut state = seed | 1;
        let mut rows = Vec::with_capacity(height);
        for _ in 0..height {
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            let mut x = 0u32;
            loop {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let gap = 1 + ((state >> 33) as u32 % 16);
                let len = 1 + ((state >> 51) as u32 % 6);
                if x + gap + len >= width {
                    break;
                }
                pairs.push((x + gap, len));
                x += gap + len;
            }
            rows.push(RleRow::from_pairs(width, &pairs).unwrap());
        }
        RleImage::from_rows(width, rows).unwrap()
    }

    #[test]
    fn concurrent_jobs_are_isolated_and_bit_identical() {
        let exec = Arc::new(DiffExecutorConfig::new(3).build());
        let threads: Vec<_> = (0..6u64)
            .map(|i| {
                let exec = Arc::clone(&exec);
                std::thread::spawn(move || {
                    let a = Arc::new(gen_image(128, 24 + i as usize, 0x5EED + i));
                    let b = Arc::new(gen_image(128, 24 + i as usize, 0xFEED + i));
                    let expected = a.xor(&b).unwrap();
                    let out = exec.diff_pair(&a, &b, None).unwrap();
                    assert_eq!(out.image, expected, "results routed to the wrong job");
                    assert_eq!(out.stats.rows, a.height());
                    out.job
                })
            })
            .collect();
        let mut ids: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "every submitter got its own job id");
        assert_eq!(exec.in_flight(), 0);
        assert_eq!(exec.abandoned(), 0);
    }

    #[test]
    fn job_ticket_ranges_are_contiguous_and_disjoint() {
        let exec = DiffExecutorConfig::new(2).build();
        let a = Arc::new(gen_image(64, 9, 1));
        let b = Arc::new(gen_image(64, 9, 2));
        let first = exec.diff_pair(&a, &b, None).unwrap();
        let second = exec.diff_pair(&a, &b, None).unwrap();
        assert_eq!(first.tickets.1 - first.tickets.0, 9);
        assert!(second.tickets.0 >= first.tickets.1);
        assert_eq!(exec.next_ticket(), second.tickets.1);
    }

    #[test]
    fn queue_wait_is_measured_per_job() {
        let exec = DiffExecutorConfig::new(2).build();
        let a = Arc::new(gen_image(64, 16, 3));
        let b = Arc::new(gen_image(64, 16, 4));
        let out = exec.diff_pair(&a, &b, None).unwrap();
        // A finished job must have checked out at least one chunk, and
        // its queue wait is bounded by its wall time.
        assert!(out.queue_wait <= out.stats.wall + Duration::from_millis(1));
    }

    #[test]
    fn plan_ranges_covers_and_splits() {
        let a = gen_image(256, 40, 7);
        let b = gen_image(256, 40, 8);
        let ranges = plan_ranges(&a, &b, None, None, 4);
        assert!(ranges.len() >= 4);
        let mut next = 0usize;
        for (lo, hi) in &ranges {
            assert_eq!(*lo, next, "ranges are contiguous and ordered");
            assert!(hi > lo);
            next = *hi;
        }
        assert_eq!(next, 40, "ranges cover every row");
        // An explicit target of 1 produces per-row ranges.
        assert_eq!(plan_ranges(&a, &b, None, Some(1), 4).len(), 40);
    }

    #[test]
    fn fairness_small_job_is_not_starved_by_a_big_one() {
        // One huge job saturates a 2-worker executor; a small job
        // submitted after it completes while the big one is in flight —
        // the round-robin rotation interleaves its chunks.
        let exec = Arc::new(DiffExecutorConfig::new(2).build());
        let big_a = Arc::new(gen_image(2048, 1200, 11));
        let big_b = Arc::new(gen_image(2048, 1200, 12));
        let small_a = Arc::new(gen_image(2048, 8, 13));
        let small_b = Arc::new(gen_image(2048, 8, 14));
        let big_handle = exec.submit_pair(&big_a, &big_b).unwrap();
        let small = exec.diff_pair(&small_a, &small_b, None).unwrap();
        assert_eq!(small.image, small_a.xor(&small_b).unwrap());
        let mut big_ok = 0usize;
        while let Ok(Some(o)) = big_handle.collect_next(None) {
            assert!(o.result.is_ok(), "big job rows must all succeed");
            big_ok += 1;
        }
        assert_eq!(big_ok, 1200);
        assert_eq!(exec.in_flight(), 0);
    }

    #[test]
    fn abandon_is_job_local() {
        let exec = DiffExecutorConfig::new(2).build();
        let a = Arc::new(gen_image(128, 32, 21));
        let b = Arc::new(gen_image(128, 32, 22));
        let doomed = exec.submit_pair(&a, &b).unwrap();
        doomed.abandon();
        // A subsequent job on the same executor is unaffected.
        let out = exec.diff_pair(&a, &b, None).unwrap();
        assert_eq!(out.image, a.xor(&b).unwrap());
        assert_eq!(exec.in_flight(), 0);
    }
}
