//! The §6 coalescing pass: merging adjacent runs after the XOR completes.
//!
//! > "Additionally, the task of combining the adjacent runs in different
//! > cells at the end of the algorithm is left as future research. This
//! > task also is not fast on a pure systolic system, but could be
//! > performed quickly with the help of a broadcast bus."
//!
//! When the XOR machine halts, the `RegSmall` chain holds the difference as
//! ordered, non-overlapping runs — but some are *adjacent* (touching with
//! no gap), and empty cells are scattered through the chain. Producing the
//! maximally-compressed stream requires compacting the runs leftwards and
//! merging touching neighbours.
//!
//! Two hardware models, as the paper suggests:
//!
//! * [`CoalescePass`] — a **pure systolic** pass: every iteration each run
//!   slides one cell left into an empty neighbour (synchronous, local), and
//!   odd/even-paired neighbouring cells merge if their runs touch. This
//!   needs on the order of *array length* iterations because compaction
//!   distance is covered one cell per cycle — confirming the paper's "not
//!   fast on a pure systolic system".
//! * [`bus_coalesce`] — a **broadcast-bus** pass: every run is delivered
//!   once to its final position (merging on the fly), i.e. exactly `k`
//!   single-datum bus transactions.
//!
//! Both produce the identical canonical row; experiment E13 measures the
//! gap.

use crate::array::SystolicArray;
use crate::error::SystolicError;
use rle::{Pixel, RleRow, Run};

/// Counters for a coalescing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Synchronous iterations of the pure systolic pass.
    pub iterations: u64,
    /// Adjacent-pair merges performed.
    pub merges: u64,
    /// One-cell compaction moves performed.
    pub moves: u64,
}

/// The pure-systolic coalesce/compact machine.
#[derive(Clone, Debug)]
pub struct CoalescePass {
    width: Pixel,
    cells: Vec<Option<Run>>,
    stats: CoalesceStats,
    /// Alternates each iteration so simultaneous merges never conflict
    /// (odd-even transposition style).
    parity: bool,
}

impl CoalescePass {
    /// Builds the pass from any sparse ordered run chain.
    #[must_use]
    pub fn from_cells(width: Pixel, cells: Vec<Option<Run>>) -> Self {
        Self {
            width,
            cells,
            stats: CoalesceStats::default(),
            parity: false,
        }
    }

    /// Builds the pass from a halted XOR machine's `RegSmall` chain.
    #[must_use]
    pub fn from_array(array: &SystolicArray) -> Self {
        Self::from_cells(array.width(), array.views().map(|c| c.small).collect())
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CoalesceStats {
        &self.stats
    }

    /// Whether the chain is compacted (no gap before a run) and merged (no
    /// two neighbouring runs touch) — the halt condition.
    #[must_use]
    pub fn is_done(&self) -> bool {
        for pair in self.cells.windows(2) {
            if pair[0].is_none() && pair[1].is_some() {
                return false; // gap before a run: not compacted
            }
            if let (Some(a), Some(b)) = (pair[0], pair[1]) {
                if a.end_exclusive() == b.start() {
                    return false; // touching neighbours: not merged
                }
            }
        }
        true
    }

    /// One synchronous iteration: compact left by one, then merge one
    /// odd/even family of neighbouring pairs.
    pub fn step(&mut self) {
        let n = self.cells.len();
        // Phase 1 — compact: a run moves left iff its left neighbour is
        // empty *in the current state* (synchronous; no two runs target the
        // same cell because a mover's own cell is occupied).
        let mut moved = Vec::new();
        for i in 1..n {
            if self.cells[i].is_some() && self.cells[i - 1].is_none() {
                moved.push(i);
            }
        }
        for &i in &moved {
            self.cells[i - 1] = self.cells[i].take();
            self.stats.moves += 1;
        }
        // Phase 2 — merge the (even, odd) or (odd, even) neighbour pairs.
        let start = usize::from(self.parity);
        self.parity = !self.parity;
        let mut i = start;
        while i + 1 < n {
            if let (Some(a), Some(b)) = (self.cells[i], self.cells[i + 1]) {
                if a.end_exclusive() == b.start() {
                    self.cells[i] = Some(a.hull(&b));
                    self.cells[i + 1] = None;
                    self.stats.merges += 1;
                }
            }
            i += 2;
        }
        self.stats.iterations += 1;
    }

    /// Runs to completion. The iteration budget is `2·(cells + 1)` — ample
    /// for one-cell-per-cycle compaction plus alternating merges; exceeding
    /// it means the pass is broken.
    pub fn run(&mut self) -> Result<(), SystolicError> {
        let bound = 2 * (self.cells.len() as u64 + 1);
        while !self.is_done() {
            if self.stats.iterations >= bound {
                return Err(SystolicError::IterationBound { bound });
            }
            self.step();
        }
        Ok(())
    }

    /// Extracts the compacted, merged chain as a canonical row.
    pub fn extract(&self) -> Result<RleRow, SystolicError> {
        let mut out = RleRow::new(self.width);
        for (i, run) in self.cells.iter().enumerate() {
            if let Some(run) = run {
                out.push_run(*run)
                    .map_err(|_| SystolicError::Disordered { cell: i })?;
            }
        }
        Ok(out)
    }
}

/// The broadcast-bus coalesce: one transaction per run, merging on the fly.
/// Returns the canonical row and the number of bus transactions.
#[must_use]
pub fn bus_coalesce(width: Pixel, cells: &[Option<Run>]) -> (RleRow, u64) {
    let mut out = RleRow::new(width);
    let mut transactions = 0u64;
    for run in cells.iter().flatten() {
        transactions += 1;
        out.push_run_coalescing(*run)
            .expect("input chain is ordered");
    }
    (out, transactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cells(width: Pixel, pairs: &[Option<(Pixel, Pixel)>]) -> (Pixel, Vec<Option<Run>>) {
        (
            width,
            pairs
                .iter()
                .map(|p| p.map(|(s, l)| Run::new(s, l)))
                .collect(),
        )
    }

    fn run_pass(width: Pixel, chain: Vec<Option<Run>>) -> (RleRow, CoalesceStats) {
        let mut pass = CoalescePass::from_cells(width, chain);
        pass.run().unwrap();
        (pass.extract().unwrap(), *pass.stats())
    }

    #[test]
    fn empty_chain_is_immediately_done() {
        let (w, chain) = cells(32, &[None, None, None]);
        let (row, stats) = run_pass(w, chain);
        assert!(row.is_empty());
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn merges_adjacent_runs_in_neighbouring_cells() {
        let (w, chain) = cells(32, &[Some((0, 5)), Some((5, 5)), None]);
        let (row, stats) = run_pass(w, chain);
        assert_eq!(row.runs(), &[Run::new(0, 10)]);
        assert!(stats.merges == 1);
    }

    #[test]
    fn compacts_across_empty_cells_then_merges() {
        // Adjacent runs separated by empty cells: must compact first.
        let (w, chain) = cells(
            64,
            &[Some((0, 4)), None, None, Some((4, 4)), None, Some((20, 2))],
        );
        let (row, stats) = run_pass(w, chain);
        assert_eq!(row.runs(), &[Run::new(0, 8), Run::new(20, 2)]);
        assert!(stats.moves >= 2, "{stats:?}");
    }

    #[test]
    fn merge_chains_collapse_fully() {
        let (w, chain) = cells(
            64,
            &[
                Some((0, 2)),
                Some((2, 2)),
                Some((4, 2)),
                Some((6, 2)),
                Some((8, 2)),
            ],
        );
        let (row, stats) = run_pass(w, chain);
        assert_eq!(row.runs(), &[Run::new(0, 10)]);
        assert_eq!(stats.merges, 4);
    }

    #[test]
    fn bus_version_matches_and_counts_runs() {
        let (w, chain) = cells(64, &[Some((0, 4)), None, Some((4, 4)), None, Some((20, 2))]);
        let (bus_row, tx) = bus_coalesce(w, &chain);
        let (sys_row, _) = run_pass(w, chain);
        assert_eq!(bus_row, sys_row);
        assert_eq!(tx, 3);
    }

    #[test]
    fn equals_canonicalization_on_random_chains() {
        let mut rng = StdRng::seed_from_u64(0xC0A1);
        for case in 0..200 {
            let width = 2_000u32;
            // Build a sparse chain of ordered runs with random gaps/adjacency.
            let mut chain: Vec<Option<Run>> = Vec::new();
            let mut pos = 0u32;
            while pos + 10 < width && chain.len() < 60 {
                for _ in 0..rng.gen_range(0..3) {
                    chain.push(None); // random empty cells
                }
                let len = rng.gen_range(1..6);
                chain.push(Some(Run::new(pos, len)));
                pos += len
                    + if rng.gen_bool(0.4) {
                        0
                    } else {
                        rng.gen_range(1..9)
                    };
            }
            let reference = {
                let runs: Vec<Run> = chain.iter().flatten().copied().collect();
                RleRow::from_runs(width, runs).unwrap().canonicalized()
            };
            let (sys_row, _) = run_pass(width, chain.clone());
            assert_eq!(sys_row, reference, "case {case}");
            let (bus_row, tx) = bus_coalesce(width, &chain);
            assert_eq!(bus_row, reference, "case {case}");
            assert_eq!(tx as usize, chain.iter().flatten().count());
        }
    }

    #[test]
    fn pure_pass_costs_order_of_chain_length() {
        // A single run at the far end of a long chain of empties must walk
        // all the way left — the paper's "not fast" prediction.
        let n = 200usize;
        let mut chain = vec![None; n];
        chain[n - 1] = Some(Run::new(50, 5));
        let mut pass = CoalescePass::from_cells(1_000, chain.clone());
        pass.run().unwrap();
        assert!(
            pass.stats().iterations >= (n as u64) - 1,
            "compaction must cost ~n iterations, took {}",
            pass.stats().iterations
        );
        // ... while the bus does it in one transaction.
        let (_, tx) = bus_coalesce(1_000, &chain);
        assert_eq!(tx, 1);
    }

    #[test]
    fn end_to_end_with_the_xor_machine() {
        // XOR of adjacent inputs leaves uncoalesced output; the pass must
        // finish the job, matching extract().
        let a = RleRow::from_pairs(64, &[(0, 5)]).unwrap();
        let b = RleRow::from_pairs(64, &[(5, 5)]).unwrap();
        let mut machine = SystolicArray::load(&a, &b).unwrap();
        machine.run().unwrap();
        let mut pass = CoalescePass::from_array(&machine);
        pass.run().unwrap();
        assert_eq!(pass.extract().unwrap(), machine.extract().unwrap());
        assert_eq!(pass.extract().unwrap().runs(), &[Run::new(0, 10)]);
    }
}
