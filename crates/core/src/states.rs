//! The qualitatively different cell states of the paper's Figure 4.
//!
//! Figure 4 is purely graphical in the paper (nine run-pair geometries, each
//! with an `a` variant — already ordered — and a `b` variant — needing the
//! step-1 swap — plus the states that lack a mirror image). We reconstruct
//! the equivalence classes from the geometry that drives steps 1–2: what
//! matters to the XOR formulas is how the two intervals relate
//! (disjoint/adjacent/overlap, shared endpoints, containment). The paper's
//! own characterisation — "any b state will turn into the corresponding a
//! state after step 1 ... and any a state will be unchanged by a step 1" —
//! is property-tested here.

use rle::Run;

/// Geometry of the two runs in a cell, after normalising order so the first
/// run is the smaller under the paper's (start, end) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PairGeometry {
    /// Runs separated by at least one background pixel. XOR: unchanged.
    Disjoint,
    /// Runs touching with no gap. XOR: unchanged (output stays adjacent).
    Adjacent,
    /// Proper overlap: shared pixels, each run also has private pixels on
    /// its own side. XOR: prefix + suffix.
    OverlapProper,
    /// Equal intervals. XOR: both annihilate.
    Equal,
    /// Same start, different ends. XOR: suffix only (RegSmall empties).
    SharedStart,
    /// Same end, different starts. XOR: prefix only (RegBig empties).
    SharedEnd,
    /// Strict containment with neither endpoint shared. XOR: prefix +
    /// suffix, both from the containing run.
    Nested,
}

/// Full qualitative state of a cell: the register occupancy, the pair
/// geometry, and whether step 1 must swap — the paper's `a`/`b` pairing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellState {
    /// Both registers empty (the paper's terminal "empty cell").
    Empty,
    /// Only `RegSmall` occupied: a settled output run.
    SmallOnly,
    /// Only `RegBig` occupied: step 1 will move it (a `b`-style state with
    /// no `a` mirror other than [`CellState::SmallOnly`]).
    BigOnly,
    /// Both occupied.
    Pair {
        /// Geometry of the two runs.
        geometry: PairGeometry,
        /// Whether the registers are currently in the wrong order — the
        /// `b` variant of the state, which step 1 converts to the `a`
        /// variant.
        needs_swap: bool,
    },
}

/// Classifies a pair of runs (given in `RegSmall`, `RegBig` order).
#[must_use]
pub fn classify(small: Option<Run>, big: Option<Run>) -> CellState {
    match (small, big) {
        (None, None) => CellState::Empty,
        (Some(_), None) => CellState::SmallOnly,
        (None, Some(_)) => CellState::BigOnly,
        (Some(s), Some(b)) => {
            let needs_swap = s.key() > b.key();
            let (lo, hi) = if needs_swap { (b, s) } else { (s, b) };
            CellState::Pair {
                geometry: pair_geometry(lo, hi),
                needs_swap,
            }
        }
    }
}

/// Geometry of an ordered pair `lo <= hi`.
#[must_use]
pub fn pair_geometry(lo: Run, hi: Run) -> PairGeometry {
    debug_assert!(lo.key() <= hi.key());
    if lo == hi {
        PairGeometry::Equal
    } else if lo.start() == hi.start() {
        PairGeometry::SharedStart
    } else if lo.end() == hi.end() {
        PairGeometry::SharedEnd
    } else if lo.end() > hi.end() {
        PairGeometry::Nested
    } else if lo.end() >= hi.start() {
        PairGeometry::OverlapProper
    } else if lo.end() + 1 == hi.start() {
        PairGeometry::Adjacent
    } else {
        PairGeometry::Disjoint
    }
}

/// The number of distinct two-run geometries; together with the `a`/`b`
/// orientation this spans the paper's Figure-4 taxonomy (`Equal` has no
/// meaningful `b` variant, matching the paper's unpaired states).
pub const GEOMETRY_COUNT: usize = 7;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{step1_order, step2_xor};

    fn run(s: u32, l: u32) -> Run {
        Run::new(s, l)
    }

    #[test]
    fn classify_occupancy_states() {
        assert_eq!(classify(None, None), CellState::Empty);
        assert_eq!(classify(Some(run(1, 2)), None), CellState::SmallOnly);
        assert_eq!(classify(None, Some(run(1, 2))), CellState::BigOnly);
    }

    #[test]
    fn classify_geometries() {
        use PairGeometry::*;
        let cases = [
            (run(0, 3), run(10, 2), Disjoint),
            (run(0, 3), run(3, 2), Adjacent),
            (run(0, 5), run(3, 5), OverlapProper),
            (run(0, 5), run(0, 5), Equal),
            (run(0, 3), run(0, 5), SharedStart),
            (run(0, 5), run(2, 3), SharedEnd),
            (run(0, 8), run(2, 3), Nested),
        ];
        for (a, b, want) in cases {
            assert_eq!(
                classify(Some(a), Some(b)),
                CellState::Pair {
                    geometry: want,
                    needs_swap: false
                },
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn b_variants_need_swap_and_become_a_after_step1() {
        // The paper: "any b state will turn into the corresponding a state
        // after step 1 is performed, and any a state will be unchanged".
        for s_start in 0u32..6 {
            for s_len in 1u32..4 {
                for b_start in 0u32..6 {
                    for b_len in 1u32..4 {
                        let (s0, b0) = (run(s_start, s_len), run(b_start, b_len));
                        let before = classify(Some(s0), Some(b0));
                        let (mut s, mut b) = (Some(s0), Some(b0));
                        step1_order(&mut s, &mut b);
                        let after = classify(s, b);
                        let CellState::Pair {
                            geometry,
                            needs_swap,
                        } = before
                        else {
                            panic!("two-run cell must classify as Pair");
                        };
                        assert_eq!(
                            after,
                            CellState::Pair {
                                geometry,
                                needs_swap: false
                            },
                            "step 1 must map b-state to its a-state: {s0:?}/{b0:?}"
                        );
                        let _ = needs_swap;
                    }
                }
            }
        }
    }

    #[test]
    fn xor_result_per_geometry() {
        // One representative per geometry; the "Result" column of Figure 4.
        use PairGeometry::*;
        type Case = (Run, Run, PairGeometry, (Option<Run>, Option<Run>));
        let cases: [Case; 7] = [
            (
                run(0, 3),
                run(10, 2),
                Disjoint,
                (Some(run(0, 3)), Some(run(10, 2))),
            ),
            (
                run(0, 3),
                run(3, 2),
                Adjacent,
                (Some(run(0, 3)), Some(run(3, 2))),
            ),
            (
                run(0, 5),
                run(3, 5),
                OverlapProper,
                (Some(run(0, 3)), Some(run(5, 3))),
            ),
            (run(0, 5), run(0, 5), Equal, (None, None)),
            (run(0, 3), run(0, 5), SharedStart, (None, Some(run(3, 2)))),
            (run(0, 5), run(2, 3), SharedEnd, (Some(run(0, 2)), None)),
            (
                run(0, 8),
                run(2, 3),
                Nested,
                (Some(run(0, 2)), Some(run(5, 3))),
            ),
        ];
        for (a, b, geometry, want) in cases {
            assert_eq!(pair_geometry(a, b), geometry);
            let (mut s, mut bb) = (Some(a), Some(b));
            step2_xor(&mut s, &mut bb);
            assert_eq!((s, bb), want, "geometry {geometry:?}");
        }
    }

    #[test]
    fn geometry_is_orientation_independent() {
        let a = run(2, 6);
        let b = run(4, 10);
        let CellState::Pair {
            geometry: g1,
            needs_swap: n1,
        } = classify(Some(a), Some(b))
        else {
            unreachable!()
        };
        let CellState::Pair {
            geometry: g2,
            needs_swap: n2,
        } = classify(Some(b), Some(a))
        else {
            unreachable!()
        };
        assert_eq!(g1, g2);
        assert!(!n1);
        assert!(n2);
    }

    #[test]
    fn geometry_count_is_exhaustive() {
        // Sweep all pairs in a window and make sure every pair falls into
        // one of the seven geometries (i.e. the enum is total).
        let mut seen = std::collections::HashSet::new();
        for s in 0u32..7 {
            for l in 1u32..5 {
                for s2 in 0u32..7 {
                    for l2 in 1u32..5 {
                        let (a, b) = (run(s, l), run(s2, l2));
                        let (lo, hi) = if a.key() <= b.key() { (a, b) } else { (b, a) };
                        seen.insert(pair_geometry(lo, hi));
                    }
                }
            }
        }
        assert_eq!(seen.len(), GEOMETRY_COUNT);
    }
}
