//! The systolic RLE image-difference engine — the primary contribution of
//! *"A Systolic Algorithm to Process Compressed Binary Images"* (Ercal,
//! Allen & Feng, IPPS 1999), reproduced as a cycle-accurate simulator.
//!
//! # The machine
//!
//! A linear array of cells, each holding two run registers (`RegSmall`,
//! `RegBig`). The first image's runs are loaded into the `RegSmall` chain,
//! the second image's runs into the `RegBig` chain. Every synchronous
//! iteration each cell executes three steps:
//!
//! 1. **order** — put the smaller run (by start, then end) into `RegSmall`;
//!    a lone `RegBig` run moves into `RegSmall`;
//! 2. **xor** — combine the cell's two runs with the paper's
//!    register-transfer formulas (overlap annihilates, the symmetric
//!    difference's prefix stays in `RegSmall`, its suffix in `RegBig`);
//! 3. **shift** — every `RegBig` moves one cell to the right.
//!
//! Cells with an empty `RegBig` raise a *complete* signal; when all cells
//! raise it the controller broadcasts *finish* and the `RegSmall` chain
//! holds the XOR of the two inputs — ordered and non-overlapping (Theorem
//! 2), after at most `k1 + k2` iterations (Theorem 1), equal to the true
//! bitwise difference (Theorem 3).
//!
//! # Entry points
//!
//! * [`SystolicArray`] — load, step, inspect and extract; the simulator keeps
//!   per-iteration statistics and can record a Figure-3-style [`trace`].
//! * [`systolic_xor`] — one-call convenience for a row pair.
//! * [`engine::parallel`] — a barrier-synchronised multi-threaded engine
//!   that executes the very same machine (bit-identical results, asserted in
//!   tests) for large arrays.
//! * [`engine::pipeline`] — a persistent worker pool diffing whole images
//!   row by row (the service-shaped front-end).
//! * [`image`] — whole-image differencing, optionally parallel across rows.
//! * [`bus`] — the broadcast-bus extension the paper sketches as future
//!   work, quantifying how many shift iterations a bus would save.
//! * [`coalesce`] — the §6 run-coalescing pass (pure systolic vs.
//!   bus-assisted), the paper's second future-work item.
//! * [`stripes`] — exact stripe decomposition, fitting unbounded row widths
//!   onto fixed-size arrays.
//! * [`datapath`] — a transparent per-cell hardware cost model.
//!
//! ```
//! use rle::RleRow;
//!
//! let a = RleRow::from_pairs(32, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap();
//! let b = RleRow::from_pairs(32, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap();
//! let (diff, stats) = systolic_core::systolic_xor(&a, &b).unwrap();
//! assert_eq!(diff, rle::ops::xor(&a, &b));
//! assert_eq!(stats.iterations, 3); // the paper's Figure 3 run
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the one sanctioned exception is
// `engine::simd`, whose `core::arch` intrinsics require `unsafe` and which
// carries its own allow plus per-function safety contracts. Everything
// else in the crate remains unsafe-free.
#![deny(unsafe_code)]

pub mod array;
pub mod bus;
pub mod cell;
pub mod coalesce;
pub mod datapath;
pub mod engine;
pub mod error;
pub mod image;
pub mod invariants;
pub mod obs;
pub mod states;
pub mod stats;
pub mod stripes;
pub mod trace;

pub use array::{systolic_xor, SystolicArray};
pub use engine::executor::{DiffExecutor, DiffExecutorConfig, JobHandle, JobOutcome};
#[cfg(feature = "fault-injection")]
pub use engine::fault::{Fault, FaultPlan};
pub use engine::kernel::{Kernel, KernelChoice};
pub use engine::pipeline::{DiffPipeline, DiffPipelineConfig, PipelineLoad, SupervisionCounters};
pub use engine::simd::SimdLevel;
pub use error::SystolicError;
pub use obs::{MetricsSnapshot, ObsConfig, Observer, TraceEvent, TraceKind};
pub use stats::{ArrayStats, PipelineStats, SigPrefilterMode};
