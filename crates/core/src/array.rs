//! The systolic array simulator: state, phases, termination and extraction.

use crate::cell::{step1_order, step2_xor, CellView, OrderEvent, XorEvent};
use crate::error::SystolicError;
use crate::invariants;
use crate::stats::ArrayStats;
use rle::{Pixel, RleRow, Run};

/// A simulated linear systolic array loaded with two RLE rows.
///
/// ```
/// use rle::RleRow;
/// use systolic_core::SystolicArray;
///
/// let a = RleRow::from_pairs(64, &[(0, 8), (20, 4)]).unwrap();
/// let b = RleRow::from_pairs(64, &[(4, 8), (20, 4)]).unwrap();
/// let mut machine = SystolicArray::load(&a, &b).unwrap();
/// machine.run().unwrap();
/// assert_eq!(machine.extract().unwrap(), rle::ops::xor(&a, &b));
/// assert!(machine.stats().within_theorem1());
/// ```
///
/// Registers are stored struct-of-arrays (`small[i]`, `big[i]`) so the
/// per-phase loops are straight-line scans and the parallel engine can chunk
/// them without touching shared state.
///
/// The default capacity is `k1 + k2` cells: by the paper's Corollary 1.2 no
/// run ever travels past cell `k1 + k2`, so this is exactly the "2k cells"
/// sizing of §3 with `k = max(k1, k2)` tightened to the actual inputs. The
/// simulator still *checks* this (an overflowing shift is an error) rather
/// than assuming it.
#[derive(Clone, Debug)]
pub struct SystolicArray {
    width: Pixel,
    small: Vec<Option<Run>>,
    big: Vec<Option<Run>>,
    stats: ArrayStats,
    /// Number of occupied `RegBig` registers; zero = every cell raises its
    /// complete signal `C`, i.e. the machine has terminated.
    occupied_big: usize,
    /// When set, Theorem-2/Corollary-1.2 invariants are verified after every
    /// iteration (see [`crate::invariants`]).
    checks: bool,
    /// Iteration budget; defaults to the Theorem-1 bound `k1 + k2`.
    max_iterations: u64,
}

impl SystolicArray {
    /// Loads the machine with two rows, sizing the array at `k1 + k2` cells.
    pub fn load(a: &RleRow, b: &RleRow) -> Result<Self, SystolicError> {
        let cells = a.run_count() + b.run_count();
        Self::with_capacity(a, b, cells)
    }

    /// Loads the machine with an explicit cell count (must be at least
    /// `max(k1, k2)` to hold the initial images; `k1 + k2` is always safe).
    pub fn with_capacity(a: &RleRow, b: &RleRow, cells: usize) -> Result<Self, SystolicError> {
        if a.width() != b.width() {
            return Err(SystolicError::WidthMismatch {
                left: a.width(),
                right: b.width(),
            });
        }
        assert!(
            cells >= a.run_count().max(b.run_count()),
            "capacity {cells} cannot hold the initial {} / {} runs",
            a.run_count(),
            b.run_count()
        );
        let mut small = vec![None; cells];
        let mut big = vec![None; cells];
        for (i, &run) in a.runs().iter().enumerate() {
            small[i] = Some(run);
        }
        for (i, &run) in b.runs().iter().enumerate() {
            big[i] = Some(run);
        }
        let (k1, k2) = (a.run_count(), b.run_count());
        Ok(Self {
            width: a.width(),
            small,
            big,
            stats: ArrayStats {
                cells,
                k1,
                k2,
                ..ArrayStats::default()
            },
            occupied_big: k2,
            checks: cfg!(debug_assertions),
            max_iterations: (k1 + k2) as u64,
        })
    }

    /// Reloads the machine with a new row pair, reusing the register-file
    /// allocation — the streaming mode of a physical array, where row pairs
    /// flow through one chip. Statistics reset; the invariant-check setting
    /// is kept.
    pub fn reload(&mut self, a: &RleRow, b: &RleRow) -> Result<(), SystolicError> {
        if a.width() != b.width() {
            return Err(SystolicError::WidthMismatch {
                left: a.width(),
                right: b.width(),
            });
        }
        let (k1, k2) = (a.run_count(), b.run_count());
        let cells = k1 + k2;
        self.small.clear();
        self.small.resize(cells, None);
        self.big.clear();
        self.big.resize(cells, None);
        for (i, &run) in a.runs().iter().enumerate() {
            self.small[i] = Some(run);
        }
        for (i, &run) in b.runs().iter().enumerate() {
            self.big[i] = Some(run);
        }
        self.width = a.width();
        self.stats = ArrayStats {
            cells,
            k1,
            k2,
            ..ArrayStats::default()
        };
        self.occupied_big = k2;
        self.max_iterations = cells as u64;
        Ok(())
    }

    /// Enables or disables per-iteration invariant checking (default: on in
    /// debug builds, off in release).
    pub fn enable_invariant_checks(&mut self, on: bool) {
        self.checks = on;
    }

    /// Grants extra iterations beyond the Theorem-1 bound before
    /// [`SystolicError::IterationBound`] is raised. Useful only for
    /// deliberately-broken experimental variants.
    pub fn set_iteration_slack(&mut self, extra: u64) {
        self.max_iterations = (self.stats.k1 + self.stats.k2) as u64 + extra;
    }

    /// Row width of the loaded images.
    #[must_use]
    pub fn width(&self) -> Pixel {
        self.width
    }

    /// Number of cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.small.len()
    }

    /// Read-only view of cell `i`.
    #[must_use]
    pub fn cell(&self, i: usize) -> CellView {
        CellView {
            small: self.small[i],
            big: self.big[i],
        }
    }

    /// Read-only views of all cells, left to right.
    pub fn views(&self) -> impl Iterator<Item = CellView> + '_ {
        self.small
            .iter()
            .zip(&self.big)
            .map(|(&small, &big)| CellView { small, big })
    }

    /// Whether every cell raises its complete signal (`RegBig` empty
    /// everywhere) — the condition under which the external controller
    /// broadcasts the finish signal `F`.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.occupied_big == 0
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ArrayStats {
        &self.stats
    }

    /// Internal accessors for the engines and invariant checks.
    pub(crate) fn registers(&self) -> (&[Option<Run>], &[Option<Run>]) {
        (&self.small, &self.big)
    }

    pub(crate) fn registers_mut(&mut self) -> (&mut [Option<Run>], &mut [Option<Run>]) {
        (&mut self.small, &mut self.big)
    }

    pub(crate) fn stats_mut(&mut self) -> &mut ArrayStats {
        &mut self.stats
    }

    pub(crate) fn set_occupied_big(&mut self, n: usize) {
        self.occupied_big = n;
    }

    /// Step 1 for every cell. Exposed so traces can show intra-iteration
    /// states exactly like the paper's Figure 3 (rows 1.1, 2.1, ...).
    pub fn phase_order(&mut self) {
        for (small, big) in self.small.iter_mut().zip(&mut self.big) {
            match step1_order(small, big) {
                OrderEvent::Swapped => self.stats.swaps += 1,
                OrderEvent::Moved => {
                    self.stats.moves += 1;
                    self.occupied_big -= 1;
                }
                OrderEvent::None => {}
            }
        }
    }

    /// Step 2 for every cell (rows 1.2, 2.2, ... of Figure 3). Also samples
    /// the busy-cell count for the utilization statistic.
    pub fn phase_xor(&mut self) {
        let mut busy = 0u64;
        for (small, big) in self.small.iter_mut().zip(&mut self.big) {
            let big_was_occupied = big.is_some();
            match step2_xor(small, big) {
                XorEvent::Idle => {}
                XorEvent::Disjoint => self.stats.disjoint_xors += 1,
                XorEvent::Combined => self.stats.combines += 1,
                XorEvent::Annihilated => self.stats.annihilations += 1,
            }
            if big_was_occupied && big.is_none() {
                self.occupied_big -= 1;
            }
            if small.is_some() || big.is_some() {
                busy += 1;
            }
        }
        self.stats.busy_cell_iterations += busy;
    }

    /// Step 3 for every cell: shift the `RegBig` chain one cell to the right
    /// (rows 1.3, 2.3, ... of Figure 3). Fails if a run would fall off the
    /// end of the array, which Corollary 1.2 proves impossible at the
    /// default capacity.
    pub fn phase_shift(&mut self) -> Result<(), SystolicError> {
        if self.occupied_big == 0 {
            return Ok(()); // nothing on the chain; skip the memmove
        }
        if self.big.last().is_some_and(Option::is_some) {
            return Err(SystolicError::Overflow {
                cells: self.big.len(),
            });
        }
        self.stats.run_shifts += self.occupied_big as u64;
        self.big.rotate_right(1);
        self.big[0] = None;
        Ok(())
    }

    /// Executes one full iteration (steps 1–3) and updates the iteration
    /// counter. Returns whether the machine has terminated.
    pub fn step(&mut self) -> Result<bool, SystolicError> {
        self.phase_order();
        self.phase_xor();
        self.phase_shift()?;
        self.stats.iterations += 1;
        if self.checks {
            invariants::check_all(self)
                .map_err(|what| SystolicError::InvariantViolated { what })?;
        }
        Ok(self.is_done())
    }

    /// Runs the machine to termination.
    pub fn run(&mut self) -> Result<(), SystolicError> {
        while !self.is_done() {
            if self.stats.iterations >= self.max_iterations {
                return Err(SystolicError::IterationBound {
                    bound: self.max_iterations,
                });
            }
            self.step()?;
        }
        self.stats.output_runs = self.small.iter().flatten().count();
        Ok(())
    }

    /// Extracts the result exactly as it sits in the `RegSmall` chain:
    /// ordered, non-overlapping, possibly with adjacent runs. Fails with
    /// [`SystolicError::Disordered`] if the chain violates Theorem 2.
    pub fn extract_raw(&self) -> Result<RleRow, SystolicError> {
        let mut out = RleRow::new(self.width);
        for (i, run) in self.small.iter().enumerate() {
            if let Some(run) = run {
                out.push_run(*run)
                    .map_err(|_| SystolicError::Disordered { cell: i })?;
            }
        }
        Ok(out)
    }

    /// Extracts the result and coalesces adjacent runs (the paper's
    /// "additional pass"; see also [`crate::bus`] for the hardware-assisted
    /// version the paper leaves as future work).
    pub fn extract(&self) -> Result<RleRow, SystolicError> {
        Ok(self.extract_raw()?.canonicalized())
    }
}

/// Convenience entry point: loads, runs and extracts in one call, returning
/// the canonicalized difference and the run statistics.
pub fn systolic_xor(a: &RleRow, b: &RleRow) -> Result<(RleRow, ArrayStats), SystolicError> {
    let mut array = SystolicArray::load(a, b)?;
    array.run()?;
    let row = array.extract()?;
    Ok((row, *array.stats()))
}

/// Like [`systolic_xor`] but returns the raw (uncoalesced) output, exactly
/// what the hardware's `RegSmall` chain holds.
pub fn systolic_xor_raw(a: &RleRow, b: &RleRow) -> Result<(RleRow, ArrayStats), SystolicError> {
    let mut array = SystolicArray::load(a, b)?;
    array.run()?;
    let row = array.extract_raw()?;
    Ok((row, *array.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn row(width: Pixel, pairs: &[(Pixel, Pixel)]) -> RleRow {
        RleRow::from_pairs(width, pairs).unwrap()
    }

    fn fig1_inputs() -> (RleRow, RleRow) {
        (
            row(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]),
            row(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]),
        )
    }

    #[test]
    fn figure1_result_and_figure3_iterations() {
        let (a, b) = fig1_inputs();
        let (diff, stats) = systolic_xor(&a, &b).unwrap();
        assert_eq!(diff, row(40, &[(3, 4), (8, 2), (15, 1), (18, 2), (30, 1)]),);
        // Figure 3: the machine halts after iteration 3.
        assert_eq!(stats.iterations, 3);
        assert_eq!(stats.k1, 4);
        assert_eq!(stats.k2, 5);
        assert!(stats.within_theorem1());
        assert_eq!(stats.output_runs, 5);
    }

    #[test]
    fn figure3_intermediate_states() {
        // Verify the published register contents after step 1 of iteration 1
        // (row "1.1" of Figure 3).
        let (a, b) = fig1_inputs();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        m.phase_order();
        let smalls: Vec<_> = m.views().map(|c| c.small).collect();
        let bigs: Vec<_> = m.views().map(|c| c.big).collect();
        let r = |s, l| Some(Run::new(s, l));
        assert_eq!(
            &smalls[..5],
            &[r(3, 4), r(8, 5), r(15, 5), r(23, 2), r(27, 4)]
        );
        assert_eq!(&bigs[..4], &[r(10, 3), r(16, 2), r(23, 2), r(27, 3)]);
        assert!(bigs[4..].iter().all(Option::is_none));
    }

    #[test]
    fn empty_inputs_terminate_immediately() {
        let a = RleRow::new(64);
        let b = RleRow::new(64);
        let (diff, stats) = systolic_xor(&a, &b).unwrap();
        assert!(diff.is_empty());
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.cells, 0);
    }

    #[test]
    fn one_empty_input_is_identity() {
        let a = row(64, &[(3, 4), (10, 2), (40, 8)]);
        let b = RleRow::new(64);
        let (diff, stats) = systolic_xor(&a, &b).unwrap();
        assert_eq!(diff, a);
        // RegBig chain is empty from the start: zero iterations.
        assert_eq!(stats.iterations, 0);

        let (diff, stats) = systolic_xor(&b, &a).unwrap();
        assert_eq!(diff, a);
        // Image in RegBig: one iteration moves every run into RegSmall.
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.moves, 3);
    }

    #[test]
    fn identical_inputs_annihilate() {
        let a = row(64, &[(3, 4), (10, 2), (40, 8)]);
        let (diff, stats) = systolic_xor(&a, &a.clone()).unwrap();
        assert!(diff.is_empty());
        assert_eq!(stats.annihilations, 3);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.output_runs, 0);
    }

    #[test]
    fn single_run_pair_overlapping() {
        let a = row(64, &[(0, 10)]);
        let b = row(64, &[(5, 10)]);
        let (diff, _) = systolic_xor(&a, &b).unwrap();
        assert_eq!(diff, rle::ops::xor(&a, &b));
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let a = RleRow::new(10);
        let b = RleRow::new(12);
        assert_eq!(
            SystolicArray::load(&a, &b).unwrap_err(),
            SystolicError::WidthMismatch {
                left: 10,
                right: 12
            }
        );
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn undersized_capacity_panics() {
        let a = row(64, &[(0, 1), (2, 1), (4, 1)]);
        let _ = SystolicArray::with_capacity(&a, &RleRow::new(64), 2);
    }

    #[test]
    fn undersized_array_overflows_loudly() {
        // With only max(k1, k2) cells the surplus runs must fall off the
        // end: b's runs all land after a's, so the final configuration
        // needs k1 + k2 = 6 cells but only 3 exist. Corollary 1.2 only
        // guarantees safety at the default capacity; here the simulator
        // must fail loudly instead of silently dropping runs.
        let a = row(200, &[(0, 4), (10, 4), (20, 4)]);
        let b = row(200, &[(100, 4), (110, 4), (120, 4)]);
        let mut m = SystolicArray::with_capacity(&a, &b, 3).unwrap();
        m.enable_invariant_checks(false);
        let err = m.run().unwrap_err();
        assert_eq!(err, SystolicError::Overflow { cells: 3 });
    }

    #[test]
    fn reload_reuses_allocation_and_resets_state() {
        let (a, b) = fig1_inputs();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        m.run().unwrap();
        let first = m.extract().unwrap();
        let first_stats = *m.stats();

        // Reload with swapped operands: same canonical result, fresh stats.
        m.reload(&b, &a).unwrap();
        assert!(!m.is_done());
        assert_eq!(m.stats().iterations, 0);
        m.run().unwrap();
        assert_eq!(m.extract().unwrap(), first);
        assert_eq!(m.stats().k1, first_stats.k2);

        // Reload with a mismatched pair errors and leaves nothing corrupted.
        assert!(m.reload(&a, &RleRow::new(99)).is_err());
    }

    #[test]
    fn raw_output_may_be_uncoalesced() {
        let a = row(64, &[(0, 5)]);
        let b = row(64, &[(5, 5)]);
        let (raw, _) = systolic_xor_raw(&a, &b).unwrap();
        assert_eq!(raw.runs(), &[Run::new(0, 5), Run::new(5, 5)]);
        let (canonical, _) = systolic_xor(&a, &b).unwrap();
        assert_eq!(canonical.runs(), &[Run::new(0, 10)]);
    }

    #[test]
    fn interleaved_disjoint_runs() {
        // Worst-case-flavoured input: completely interleaved disjoint runs.
        let a = RleRow::from_pairs(400, &(0..20).map(|i| (i * 16, 3)).collect::<Vec<_>>()).unwrap();
        let b =
            RleRow::from_pairs(400, &(0..20).map(|i| (i * 16 + 8, 3)).collect::<Vec<_>>()).unwrap();
        let (diff, stats) = systolic_xor(&a, &b).unwrap();
        assert_eq!(diff, rle::ops::xor(&a, &b));
        assert!(stats.within_theorem1(), "{stats:?}");
    }

    #[test]
    fn step_by_step_equals_run() {
        let (a, b) = fig1_inputs();
        let mut stepped = SystolicArray::load(&a, &b).unwrap();
        while !stepped.step().unwrap() {}
        let mut ran = SystolicArray::load(&a, &b).unwrap();
        ran.run().unwrap();
        assert_eq!(stepped.extract().unwrap(), ran.extract().unwrap());
        assert_eq!(stepped.stats().iterations, ran.stats().iterations);
    }

    #[test]
    fn randomized_against_sequential_reference() {
        let mut rng = StdRng::seed_from_u64(0x5EED_1999);
        for case in 0..300 {
            let width: Pixel = rng.gen_range(1..=300);
            let gen_row = |rng: &mut StdRng| {
                let mut row = RleRow::new(width);
                let mut pos: Pixel = rng.gen_range(0..=4);
                while pos < width {
                    let len = rng.gen_range(1..=6).min(width - pos);
                    if len == 0 {
                        break;
                    }
                    row.push_run(Run::new(pos, len)).unwrap();
                    pos += len + rng.gen_range(1..=9);
                }
                row
            };
            let a = gen_row(&mut rng);
            let b = gen_row(&mut rng);
            let (got, stats) = systolic_xor(&a, &b).unwrap();
            let want = rle::ops::xor(&a, &b);
            assert_eq!(got, want, "case {case}: {a:?} vs {b:?}");
            assert!(stats.within_theorem1(), "case {case}: {stats:?}");
        }
    }

    #[test]
    fn stats_movement_counters_are_consistent() {
        let (a, b) = fig1_inputs();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        m.run().unwrap();
        let s = m.stats();
        // Every input run is either still present (as output) or annihilated
        // pairwise; combines conserve pixel totals but may split runs.
        assert!(s.swaps > 0);
        assert!(s.run_shifts > 0);
        assert_eq!(s.bus_placements, 0, "pure machine never uses the bus");
    }
}
