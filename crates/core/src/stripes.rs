//! Striped processing: unbounded row widths on fixed-size hardware.
//!
//! A physical array has a fixed cell count, but scan lines can be
//! arbitrarily wide. Because XOR is pixel-local, a row pair can be split
//! into disjoint horizontal stripes, each diffed independently (on one
//! array in sequence, or on several arrays in parallel), and the stripe
//! results concatenated. Runs straddling a stripe boundary are split by
//! the crop and re-joined by a final coalesce — the same "additional pass"
//! the paper already needs for adjacent output runs.
//!
//! This module provides the decomposition and proves (by test) that it is
//! exact: `xor_striped(a, b, w) == xor(a, b)` for every stripe width.

use crate::array::SystolicArray;
use crate::error::SystolicError;
use crate::stats::ArrayStats;
use rle::{Pixel, RleRow, Run};

/// Result of a striped diff.
#[derive(Clone, Debug)]
pub struct StripedOutcome {
    /// The canonical difference of the full row.
    pub row: RleRow,
    /// Per-stripe machine statistics, left to right.
    pub stripes: Vec<ArrayStats>,
}

impl StripedOutcome {
    /// Total iterations across stripes — the cost when stripes share one
    /// physical array sequentially.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.stripes.iter().map(|s| s.iterations).sum()
    }

    /// The slowest stripe — the latency when each stripe has its own
    /// array running in parallel.
    #[must_use]
    pub fn max_iterations(&self) -> u64 {
        self.stripes.iter().map(|s| s.iterations).max().unwrap_or(0)
    }

    /// The largest per-stripe cell count — the hardware size actually
    /// required, versus `k1 + k2` for the whole row.
    #[must_use]
    pub fn max_cells(&self) -> usize {
        self.stripes.iter().map(|s| s.cells).max().unwrap_or(0)
    }
}

/// Diffs two rows stripe by stripe on `stripe_width`-pixel windows.
///
/// # Panics
///
/// Panics if `stripe_width == 0`.
pub fn xor_striped(
    a: &RleRow,
    b: &RleRow,
    stripe_width: Pixel,
) -> Result<StripedOutcome, SystolicError> {
    assert!(stripe_width > 0, "stripes must be at least one pixel wide");
    if a.width() != b.width() {
        return Err(SystolicError::WidthMismatch {
            left: a.width(),
            right: b.width(),
        });
    }
    let width = a.width();
    let mut out = RleRow::new(width);
    let mut stripes = Vec::new();

    let mut start: Pixel = 0;
    while start < width {
        let len = stripe_width.min(width - start);
        let (sa, sb) = (a.crop(start, len), b.crop(start, len));
        let mut machine = SystolicArray::load(&sa, &sb)?;
        machine.run()?;
        let piece = machine.extract_raw()?;
        for run in piece.runs() {
            // Rebase into the full row; stripe-boundary fragments coalesce.
            out.push_run_coalescing(Run::new(run.start() + start, run.len()))
                .expect("stripes emit in order");
        }
        stripes.push(*machine.stats());
        start += len;
    }
    out.canonicalize();
    Ok(StripedOutcome { row: out, stripes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_row(rng: &mut StdRng, width: Pixel) -> RleRow {
        let mut row = RleRow::new(width);
        let mut pos: Pixel = rng.gen_range(0..4);
        while pos + 8 < width {
            let len = rng.gen_range(1..12).min(width - pos);
            row.push_run(Run::new(pos, len)).unwrap();
            pos += len + rng.gen_range(1..10);
        }
        row
    }

    #[test]
    fn striping_is_exact_for_all_widths() {
        let mut rng = StdRng::seed_from_u64(0x57121);
        for case in 0..40 {
            let width = rng.gen_range(50..600);
            let a = random_row(&mut rng, width);
            let b = random_row(&mut rng, width);
            let whole = rle::ops::xor(&a, &b);
            for stripe in [1u32, 7, 64, 100, width, width + 50] {
                let striped = xor_striped(&a, &b, stripe).unwrap();
                assert_eq!(striped.row, whole, "case {case}, stripe {stripe}");
            }
        }
    }

    #[test]
    fn boundary_straddling_runs_rejoin() {
        // A run crossing the stripe boundary is split by the crop and must
        // be rejoined by the coalesce.
        let a = RleRow::from_pairs(64, &[(28, 10)]).unwrap();
        let b = RleRow::new(64);
        let striped = xor_striped(&a, &b, 32).unwrap();
        assert_eq!(striped.row.runs(), &[Run::new(28, 10)]);
        assert_eq!(striped.stripes.len(), 2);
    }

    #[test]
    fn stripes_bound_the_hardware_size() {
        // A wide row with many runs: striping caps the per-array cell count
        // near the per-stripe run population instead of the whole row's.
        let mut rng = StdRng::seed_from_u64(9);
        let a = random_row(&mut rng, 4_000);
        let b = random_row(&mut rng, 4_000);
        let whole_cells = a.run_count() + b.run_count();
        let striped = xor_striped(&a, &b, 256).unwrap();
        assert!(
            striped.max_cells() < whole_cells / 4,
            "{} vs {whole_cells}",
            striped.max_cells()
        );
        // Parallel stripes beat the single array on latency.
        let (_, whole_stats) = crate::array::systolic_xor(&a, &b).unwrap();
        assert!(striped.max_iterations() <= whole_stats.iterations);
    }

    #[test]
    fn stats_cover_every_stripe() {
        let a = RleRow::from_pairs(100, &[(0, 10), (50, 10), (90, 10)]).unwrap();
        let b = RleRow::from_pairs(100, &[(5, 10), (55, 10)]).unwrap();
        let striped = xor_striped(&a, &b, 25).unwrap();
        assert_eq!(striped.stripes.len(), 4);
        assert_eq!(
            striped.total_iterations(),
            striped.stripes.iter().map(|s| s.iterations).sum::<u64>()
        );
    }

    #[test]
    fn width_mismatch_rejected() {
        let a = RleRow::new(10);
        let b = RleRow::new(20);
        assert!(xor_striped(&a, &b, 8).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one pixel")]
    fn zero_stripe_width_panics() {
        let a = RleRow::new(10);
        let _ = xor_striped(&a, &a.clone(), 0);
    }

    #[test]
    fn empty_and_degenerate_rows() {
        let e = RleRow::new(0);
        let out = xor_striped(&e, &e.clone(), 16).unwrap();
        assert!(out.row.is_empty());
        assert!(out.stripes.is_empty());

        let one = RleRow::from_pairs(1, &[(0, 1)]).unwrap();
        let out = xor_striped(&one, &RleRow::new(1), 16).unwrap();
        assert_eq!(out.row, one);
    }
}
