//! Runtime-checkable versions of the paper's correctness properties.
//!
//! The paper proves (Theorems 1–3, Corollaries 1.1, 1.2, 2.1) that the
//! machine terminates, keeps both register chains ordered and
//! non-overlapping, and preserves the XOR of the run set at every step.
//! This module turns those statements into executable checks:
//!
//! * [`check_all`] — the per-iteration invariants, run automatically after
//!   every iteration when invariant checking is enabled on the array;
//! * [`machine_xor_signature`] — the Theorem-3 conservation quantity: the
//!   XOR of *all* runs currently held anywhere in the machine, which must
//!   equal the XOR of the two original inputs at every point in time.

use crate::array::SystolicArray;
use rle::{RleRow, Run};

/// Verifies the per-iteration invariants; returns a description of the
/// first violation found.
///
/// Checked properties, with their source in the paper:
///
/// 1. the `RegSmall` chain is strictly ordered and non-overlapping
///    (Theorem 2, part 1);
/// 2. the `RegBig` chain is strictly ordered and non-overlapping
///    (Theorem 2, part 2);
/// 3. after iteration `i`, the first `i` cells have empty `RegBig`
///    (Corollary 1.1);
/// 4. no run sits beyond cell `k1 + k2` (Corollary 1.2 — enforced
///    structurally by the default capacity, revalidated here for
///    caller-supplied larger arrays).
pub fn check_all(array: &SystolicArray) -> Result<(), String> {
    check_chain_ordered(array, true)?;
    check_chain_ordered(array, false)?;
    check_corollary_1_1(array)?;
    check_corollary_1_2(array)?;
    Ok(())
}

/// Theorem 2 for one chain: successive occupied registers must satisfy
/// `prev.end < next.start`.
pub fn check_chain_ordered(array: &SystolicArray, small_chain: bool) -> Result<(), String> {
    let name = if small_chain { "RegSmall" } else { "RegBig" };
    let mut prev: Option<(usize, Run)> = None;
    for (i, view) in array.views().enumerate() {
        let reg = if small_chain { view.small } else { view.big };
        if let Some(run) = reg {
            if let Some((j, p)) = prev {
                if p.end() >= run.start() {
                    return Err(format!(
                        "{name} chain disordered: cell {j} holds {p:?}, cell {i} holds {run:?}"
                    ));
                }
            }
            prev = Some((i, run));
        }
    }
    Ok(())
}

/// Corollary 1.1: at the end of iteration `i`, the first `i` cells hold no
/// run in `RegBig`.
pub fn check_corollary_1_1(array: &SystolicArray) -> Result<(), String> {
    let done_prefix = usize::try_from(array.stats().iterations)
        .unwrap_or(usize::MAX)
        .min(array.cells());
    for (i, view) in array.views().take(done_prefix).enumerate() {
        if view.big.is_some() {
            return Err(format!(
                "Corollary 1.1 violated: cell {i} still holds {:?} in RegBig after iteration {}",
                view.big,
                array.stats().iterations
            ));
        }
    }
    Ok(())
}

/// Corollary 1.2: no non-empty cell beyond position `k1 + k2`.
pub fn check_corollary_1_2(array: &SystolicArray) -> Result<(), String> {
    let bound = array.stats().k1 + array.stats().k2;
    for (i, view) in array.views().enumerate().skip(bound) {
        if !view.is_empty() {
            return Err(format!(
                "Corollary 1.2 violated: cell {i} is non-empty beyond k1+k2 = {bound}"
            ));
        }
    }
    Ok(())
}

/// The Theorem-3 conservation quantity: the XOR (as a bitstring) of every
/// run currently held in either chain of the machine. The paper's proof of
/// correctness rests on this being invariant across all three steps; tests
/// compare it against `xor(img1, img2)` after every iteration.
///
/// Computed by a boundary sweep: each run toggles coverage parity at
/// `start` and `end + 1`; odd-parity intervals form the canonical XOR.
#[must_use]
pub fn machine_xor_signature(array: &SystolicArray) -> RleRow {
    let mut events: Vec<(u32, i32)> = Vec::new();
    for view in array.views() {
        for run in [view.small, view.big].into_iter().flatten() {
            events.push((run.start(), 1));
            events.push((run.end() + 1, -1));
        }
    }
    events.sort_unstable();
    let mut out = RleRow::new(array.width());
    let mut parity = 0i32;
    let mut open_at: Option<u32> = None;
    for (pos, delta) in events {
        let was_odd = parity % 2 != 0;
        parity += delta;
        let is_odd = parity % 2 != 0;
        match (was_odd, is_odd) {
            (false, true) => open_at = Some(pos),
            (true, false) => {
                let start = open_at.take().expect("odd interval must have opened");
                if pos > start {
                    out.push_run_coalescing(Run::from_bounds(start, pos - 1))
                        .expect("sweep emits ordered runs");
                }
            }
            _ => {}
        }
    }
    debug_assert!(open_at.is_none(), "parity must return to even");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rle::RleRow;

    fn fig1() -> (RleRow, RleRow) {
        (
            RleRow::from_pairs(40, &[(10, 3), (16, 2), (23, 2), (27, 3)]).unwrap(),
            RleRow::from_pairs(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)]).unwrap(),
        )
    }

    #[test]
    fn all_invariants_hold_throughout_figure3_run() {
        let (a, b) = fig1();
        let expected = rle::ops::xor(&a, &b);
        let mut m = SystolicArray::load(&a, &b).unwrap();
        assert_eq!(machine_xor_signature(&m), expected, "initial load");
        let mut done = false;
        while !done {
            done = m.step().unwrap();
            check_all(&m).unwrap();
            assert_eq!(
                machine_xor_signature(&m),
                expected,
                "conservation after iteration {}",
                m.stats().iterations
            );
        }
    }

    #[test]
    fn signature_of_loaded_machine_is_input_xor() {
        let (a, b) = fig1();
        let m = SystolicArray::load(&a, &b).unwrap();
        assert_eq!(machine_xor_signature(&m), rle::ops::xor(&a, &b));
    }

    #[test]
    fn signature_handles_overlapping_chains() {
        // small and big chains overlap each other at load time by design.
        let a = RleRow::from_pairs(20, &[(0, 10)]).unwrap();
        let b = RleRow::from_pairs(20, &[(5, 10)]).unwrap();
        let m = SystolicArray::load(&a, &b).unwrap();
        let sig = machine_xor_signature(&m);
        assert_eq!(sig, rle::ops::xor(&a, &b));
        assert_eq!(sig.runs().len(), 2);
    }

    #[test]
    fn signature_of_empty_machine() {
        let e = RleRow::new(16);
        let m = SystolicArray::load(&e, &e.clone()).unwrap();
        assert!(machine_xor_signature(&m).is_empty());
    }

    #[test]
    fn corollary_checks_pass_on_fresh_machine() {
        let (a, b) = fig1();
        let m = SystolicArray::load(&a, &b).unwrap();
        check_all(&m).unwrap();
    }

    // --- failure injection: the checks must actually catch corruption ---

    #[test]
    fn detects_disordered_small_chain() {
        let (a, b) = fig1();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        {
            let (small, _) = m.registers_mut();
            small.swap(0, 1); // out of order
        }
        let err = check_chain_ordered(&m, true).unwrap_err();
        assert!(err.contains("RegSmall"), "{err}");
        assert!(check_all(&m).is_err());
    }

    #[test]
    fn detects_overlapping_big_chain() {
        let (a, b) = fig1();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        {
            let (_, big) = m.registers_mut();
            big[1] = big[0]; // duplicate: overlapping neighbours
        }
        let err = check_chain_ordered(&m, false).unwrap_err();
        assert!(err.contains("RegBig"), "{err}");
    }

    #[test]
    fn detects_corollary_1_2_violation() {
        let (a, b) = fig1();
        // Oversized array so there is space beyond k1 + k2 to corrupt.
        let mut m = SystolicArray::with_capacity(&a, &b, 12).unwrap();
        {
            let (small, _) = m.registers_mut();
            small[11] = Some(rle::Run::new(35, 2));
        }
        let err = check_corollary_1_2(&m).unwrap_err();
        assert!(err.contains("Corollary 1.2"), "{err}");
    }

    #[test]
    fn step_surfaces_injected_corruption_as_error() {
        let (a, b) = fig1();
        let mut m = SystolicArray::load(&a, &b).unwrap();
        m.enable_invariant_checks(true);
        m.step().unwrap();
        {
            let (small, _) = m.registers_mut();
            // Clobber a register so the small chain overlaps.
            small[1] = small[0];
        }
        let err = loop {
            match m.step() {
                Ok(true) => panic!("corrupted machine must not terminate cleanly"),
                Ok(false) => continue,
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, crate::error::SystolicError::InvariantViolated { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn conservation_detects_lost_runs() {
        let (a, b) = fig1();
        let expected = rle::ops::xor(&a, &b);
        let mut m = SystolicArray::load(&a, &b).unwrap();
        {
            let (small, _) = m.registers_mut();
            small[2] = None; // drop a run: the XOR signature must change
        }
        assert_ne!(machine_xor_signature(&m), expected);
    }
}
