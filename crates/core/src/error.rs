//! Error type for the systolic simulator.
//!
//! A correct implementation of the paper's algorithm never hits the
//! `Overflow`, `IterationBound` or `Disordered` variants — they exist so the
//! simulator *falsifies loudly* instead of silently violating Corollary 1.2,
//! Theorem 1 or Theorem 2 if a modification introduces a bug.

use std::fmt;

/// Errors raised by the systolic simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SystolicError {
    /// The two input rows have different widths.
    WidthMismatch {
        /// Width of the first input.
        left: u32,
        /// Width of the second input.
        right: u32,
    },
    /// The two input images have different heights.
    HeightMismatch {
        /// Height of the first input.
        left: usize,
        /// Height of the second input.
        right: usize,
    },
    /// A run was shifted out of the last cell. Corollary 1.2 guarantees this
    /// cannot happen with capacity `k1 + k2`; seeing it means the machine
    /// (or a caller-supplied smaller capacity) is wrong.
    Overflow {
        /// Number of cells in the array.
        cells: usize,
    },
    /// The machine failed to terminate within the Theorem-1 bound
    /// (`k1 + k2` iterations, plus any caller-granted slack).
    IterationBound {
        /// The bound that was exceeded.
        bound: u64,
    },
    /// Extraction found `RegSmall` runs out of order or overlapping,
    /// violating Theorem 2.
    Disordered {
        /// Index of the first cell whose run violates the ordering.
        cell: usize,
    },
    /// An invariant check (enabled via
    /// [`SystolicArray::enable_invariant_checks`]) failed.
    ///
    /// [`SystolicArray::enable_invariant_checks`]:
    ///     crate::array::SystolicArray::enable_invariant_checks
    InvariantViolated {
        /// Human-readable description of the violated invariant.
        what: String,
    },
    /// A pipeline row crashed its worker on every attempt the supervisor was
    /// willing to grant (see
    /// [`DiffPipelineConfig::retry_limit`]). Raised instead of propagating
    /// the worker's panic to the caller.
    ///
    /// [`DiffPipelineConfig::retry_limit`]:
    ///     crate::engine::pipeline::DiffPipelineConfig::retry_limit
    RowFailed {
        /// Ticket id of the failed row.
        row: u64,
        /// How many times the row was attempted before giving up.
        attempts: u32,
        /// The panic message of the last attempt.
        cause: String,
    },
    /// A deadline given to [`DiffPipeline::collect_timeout`] (or configured
    /// via [`DiffPipelineConfig::row_deadline`]) expired with rows still in
    /// flight — typically a stalled worker.
    ///
    /// [`DiffPipeline::collect_timeout`]:
    ///     crate::engine::pipeline::DiffPipeline::collect_timeout
    /// [`DiffPipelineConfig::row_deadline`]:
    ///     crate::engine::pipeline::DiffPipelineConfig::row_deadline
    DeadlineExceeded {
        /// How long the collector waited before giving up.
        waited: std::time::Duration,
        /// Rows submitted but not yet collected when the deadline fired.
        in_flight: usize,
    },
}

impl fmt::Display for SystolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystolicError::WidthMismatch { left, right } => {
                write!(f, "input rows have different widths ({left} vs {right})")
            }
            SystolicError::HeightMismatch { left, right } => {
                write!(f, "input images have different heights ({left} vs {right})")
            }
            SystolicError::Overflow { cells } => {
                write!(
                    f,
                    "a run was shifted out of the {cells}-cell array (Corollary 1.2 violated)"
                )
            }
            SystolicError::IterationBound { bound } => {
                write!(
                    f,
                    "machine did not terminate within {bound} iterations (Theorem 1 violated)"
                )
            }
            SystolicError::Disordered { cell } => {
                write!(
                    f,
                    "RegSmall chain is disordered at cell {cell} (Theorem 2 violated)"
                )
            }
            SystolicError::InvariantViolated { what } => {
                write!(f, "invariant violated: {what}")
            }
            SystolicError::RowFailed {
                row,
                attempts,
                cause,
            } => {
                write!(
                    f,
                    "row {row} failed after {attempts} attempts (last cause: {cause})"
                )
            }
            SystolicError::DeadlineExceeded { waited, in_flight } => {
                write!(
                    f,
                    "pipeline deadline exceeded after {:.1} ms with {in_flight} rows in flight",
                    waited.as_secs_f64() * 1e3
                )
            }
        }
    }
}

impl std::error::Error for SystolicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_theorem() {
        assert!(SystolicError::Overflow { cells: 8 }
            .to_string()
            .contains("Corollary 1.2"));
        assert!(SystolicError::IterationBound { bound: 9 }
            .to_string()
            .contains("Theorem 1"));
        assert!(SystolicError::Disordered { cell: 2 }
            .to_string()
            .contains("Theorem 2"));
        assert!(SystolicError::WidthMismatch { left: 1, right: 2 }
            .to_string()
            .contains("widths"));
        assert!(SystolicError::HeightMismatch { left: 1, right: 2 }
            .to_string()
            .contains("heights"));
        assert!(SystolicError::InvariantViolated { what: "x".into() }
            .to_string()
            .contains("x"));
        let failed = SystolicError::RowFailed {
            row: 7,
            attempts: 3,
            cause: "boom".into(),
        }
        .to_string();
        assert!(
            failed.contains("row 7") && failed.contains("3 attempts") && failed.contains("boom")
        );
        let late = SystolicError::DeadlineExceeded {
            waited: std::time::Duration::from_millis(250),
            in_flight: 2,
        }
        .to_string();
        assert!(late.contains("deadline") && late.contains("2 rows"));
    }
}
