//! Whole-image differencing on the systolic machine.
//!
//! The hardware diffs one row pair at a time (Figure 1: "Row of Image 1" vs
//! "Row of Image 2"); an image is processed by streaming its rows through
//! the array. This module provides that loop, sequentially or with rows
//! distributed across host threads (each worker simulating its own array —
//! the natural parallelism of an inspection pipeline where several systolic
//! chips scan different board regions).
//!
//! [`xor_image_parallel`] spawns a fresh thread scope per call; for
//! long-lived services diffing many images, prefer the persistent pool in
//! [`crate::engine::pipeline::DiffPipeline`], which keeps its workers (and
//! their register buffers) alive across calls.

use crate::array::SystolicArray;
use crate::error::SystolicError;
use crate::stats::ArrayStats;
use rle::{RleImage, RleRow};

/// Aggregate statistics for an image-level diff.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImageDiffStats {
    /// Sum of all per-row counters. `totals.iterations` is the number of
    /// systolic iterations a single physical array would spend streaming
    /// every row through.
    pub totals: ArrayStats,
    /// The slowest row's iteration count — the latency bound when each row
    /// has its own array (fully parallel hardware).
    pub max_row_iterations: u64,
    /// Number of row pairs processed.
    pub rows: usize,
}

impl ImageDiffStats {
    fn absorb_row(&mut self, stats: &ArrayStats) {
        self.totals.absorb(stats);
        self.max_row_iterations = self.max_row_iterations.max(stats.iterations);
        self.rows += 1;
    }
}

pub(crate) fn check_dims(a: &RleImage, b: &RleImage) -> Result<(), SystolicError> {
    if a.width() != b.width() {
        return Err(SystolicError::WidthMismatch {
            left: a.width(),
            right: b.width(),
        });
    }
    if a.height() != b.height() {
        return Err(SystolicError::HeightMismatch {
            left: a.height(),
            right: b.height(),
        });
    }
    Ok(())
}

fn diff_row(a: &RleRow, b: &RleRow) -> Result<(RleRow, ArrayStats), SystolicError> {
    let mut array = SystolicArray::load(a, b)?;
    array.run()?;
    Ok((array.extract()?, *array.stats()))
}

/// A reusable row-differencing pipeline: one simulated array through which
/// row pairs stream, reusing the register-file allocation between rows —
/// exactly how a physical chip processes a whole image.
#[derive(Debug, Default)]
pub struct RowPipeline {
    array: Option<SystolicArray>,
    /// Aggregate statistics over every row pair processed so far.
    pub totals: ImageDiffStats,
}

impl RowPipeline {
    /// Creates an empty pipeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Diffs one row pair, accumulating statistics.
    pub fn diff(&mut self, a: &RleRow, b: &RleRow) -> Result<RleRow, SystolicError> {
        let array = match self.array.as_mut() {
            Some(array) => {
                array.reload(a, b)?;
                array
            }
            None => self.array.insert(SystolicArray::load(a, b)?),
        };
        array.run()?;
        let row = array.extract()?;
        self.totals.absorb_row(array.stats());
        Ok(row)
    }
}

/// Diffs two images row by row on a single simulated array (streamed
/// through a [`RowPipeline`], as the hardware would).
pub fn xor_image(a: &RleImage, b: &RleImage) -> Result<(RleImage, ImageDiffStats), SystolicError> {
    check_dims(a, b)?;
    let mut pipeline = RowPipeline::new();
    let mut rows = Vec::with_capacity(a.height());
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        rows.push(pipeline.diff(ra, rb)?);
    }
    let image = RleImage::from_rows(a.width(), rows).expect("row widths preserved");
    Ok((image, pipeline.totals))
}

/// Diffs two images with row pairs distributed across `threads` workers.
/// The result is identical to [`xor_image`]; only host wall-clock changes.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn xor_image_parallel(
    a: &RleImage,
    b: &RleImage,
    threads: usize,
) -> Result<(RleImage, ImageDiffStats), SystolicError> {
    assert!(threads > 0, "need at least one thread");
    check_dims(a, b)?;
    let height = a.height();
    let workers = threads.min(height.max(1));
    if workers <= 1 {
        return xor_image(a, b);
    }

    let chunk = height.div_ceil(workers);
    let results = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                // Both bounds clamp: with an uneven height the last chunks
                // may be short or empty (e.g. 5 rows on 4 workers chunks as
                // 2+2+1+0), and `t * chunk` alone can pass the end.
                let lo = (t * chunk).min(height);
                let hi = ((t + 1) * chunk).min(height);
                let (ra, rb) = (&a.rows()[lo..hi], &b.rows()[lo..hi]);
                scope.spawn(move |_| {
                    ra.iter()
                        .zip(rb)
                        .map(|(x, y)| diff_row(x, y))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("image diff worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("image diff scope panicked");

    let mut stats = ImageDiffStats::default();
    let mut rows = Vec::with_capacity(height);
    for chunk_result in results {
        for (row, row_stats) in chunk_result? {
            stats.absorb_row(&row_stats);
            rows.push(row);
        }
    }
    let image = RleImage::from_rows(a.width(), rows).expect("row widths preserved");
    Ok((image, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(art: &str) -> RleImage {
        RleImage::from_ascii(art)
    }

    #[test]
    fn image_diff_matches_sequential_reference() {
        let a = img("####....\n..##..##\n........\n#.#.#.#.\n");
        let b = img("####....\n..##..#.\n...##...\n.#.#.#.#\n");
        let (got, stats) = xor_image(&a, &b).unwrap();
        assert_eq!(got, a.xor(&b).unwrap());
        assert_eq!(stats.rows, 4);
        assert!(stats.max_row_iterations <= stats.totals.iterations.max(1));
    }

    #[test]
    fn identical_images_give_empty_diff() {
        let a = img("##..##..\n.######.\n");
        let (got, stats) = xor_image(&a, &a.clone()).unwrap();
        assert_eq!(got.ones(), 0);
        assert_eq!(stats.totals.output_runs, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build a taller image so several chunks actually form.
        let mut art = String::new();
        for y in 0..64 {
            for x in 0..64 {
                art.push(if (x * 7 + y * 13) % 5 < 2 { '#' } else { '.' });
            }
            art.push('\n');
        }
        let a = img(&art);
        let mut art_b = String::new();
        for y in 0..64 {
            for x in 0..64usize {
                art_b.push(if (x * 11 + y * 3) % 7 < 2 { '#' } else { '.' });
            }
            art_b.push('\n');
        }
        let b = img(&art_b);
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();
        for threads in [1, 2, 3, 8, 100] {
            let (par, par_stats) = xor_image_parallel(&a, &b, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats, seq_stats, "threads={threads}");
        }
    }

    #[test]
    fn parallel_handles_uneven_heights() {
        // Regression: 5 rows on 4 workers chunks as ceil(5/4)=2 → worker 3
        // used to slice rows[6..5] and panic.
        let a = img("##......\n..##....\n....##..\n......##\n########\n");
        let b = img("##..##..\n..##..##\n##..##..\n..##..##\n........\n");
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();
        for threads in [2, 3, 4, 5, 7] {
            let (par, par_stats) = xor_image_parallel(&a, &b, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats, seq_stats, "threads={threads}");
        }
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let a = RleImage::new(8, 2);
        assert!(xor_image(&a, &RleImage::new(9, 2)).is_err());
        assert!(xor_image(&a, &RleImage::new(8, 3)).is_err());
        assert!(xor_image_parallel(&a, &RleImage::new(8, 3), 2).is_err());
    }

    #[test]
    fn pipeline_reuse_matches_fresh_arrays() {
        let a = img("####....\n..##..##\n#.#.#.#.\n........\n");
        let b = img("###.....\n..##..#.\n.#.#.#.#\n...##...\n");
        let mut pipeline = RowPipeline::new();
        for (ra, rb) in a.rows().iter().zip(b.rows()) {
            let via_pipeline = pipeline.diff(ra, rb).unwrap();
            let (via_fresh, fresh_stats) = diff_row(ra, rb).unwrap();
            assert_eq!(via_pipeline, via_fresh);
            let _ = fresh_stats;
        }
        assert_eq!(pipeline.totals.rows, 4);
        // The pipeline's totals equal the per-row sums of fresh runs.
        let (_, image_stats) = xor_image(&a, &b).unwrap();
        assert_eq!(pipeline.totals, image_stats);
    }

    #[test]
    fn pipeline_handles_varying_row_shapes() {
        // Rows with wildly different run counts force reload to regrow and
        // shrink the register file.
        let mut pipeline = RowPipeline::new();
        let wide =
            rle::RleRow::from_pairs(64, &(0..16).map(|i| (i * 4, 2)).collect::<Vec<_>>()).unwrap();
        let empty = rle::RleRow::new(64);
        assert_eq!(pipeline.diff(&wide, &empty).unwrap(), wide);
        assert!(pipeline.diff(&empty, &empty.clone()).unwrap().is_empty());
        assert_eq!(pipeline.diff(&empty, &wide).unwrap(), wide);
        assert!(pipeline.diff(&wide, &wide.clone()).unwrap().is_empty());
        assert_eq!(pipeline.totals.rows, 4);
    }

    #[test]
    fn empty_image() {
        let a = RleImage::new(16, 0);
        let (d, stats) = xor_image_parallel(&a, &a.clone(), 4).unwrap();
        assert_eq!(d.height(), 0);
        assert_eq!(stats.rows, 0);
    }
}
