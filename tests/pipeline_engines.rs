//! Cross-engine equivalence at image granularity: the sequential streamer
//! ([`xor_image`]), the per-row thread-scope engine ([`xor_image_parallel`])
//! and the persistent worker-pool pipeline ([`DiffPipeline`]) must produce
//! bit-identical images and consistent statistics on random workloads.

mod common;

use common::rle_row;
use proptest::prelude::*;
use rle_systolic::rle::{RleImage, RleRow};
use rle_systolic::systolic_core::image::{xor_image, xor_image_parallel};
use rle_systolic::systolic_core::{DiffPipeline, DiffPipelineConfig, Kernel};

const WIDTH: u32 = 512;

fn image_pair() -> impl Strategy<Value = (RleImage, RleImage)> {
    prop::collection::vec((rle_row(WIDTH, 12, true), rle_row(WIDTH, 12, true)), 0..=12).prop_map(
        |pairs| {
            let (rows_a, rows_b): (Vec<RleRow>, Vec<RleRow>) = pairs.into_iter().unzip();
            (
                RleImage::from_rows(WIDTH, rows_a).unwrap(),
                RleImage::from_rows(WIDTH, rows_b).unwrap(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn three_engines_are_bit_identical((a, b) in image_pair(), threads in 1usize..5) {
        let (seq, seq_stats) = xor_image(&a, &b).unwrap();
        let (par, par_stats) = xor_image_parallel(&a, &b, threads).unwrap();
        // The systolic-kernel pool runs the same cycle-accurate machine as
        // the reference engines, so its stats must agree exactly.
        let mut pool = DiffPipelineConfig::new(threads)
            .kernel(Kernel::Systolic)
            .build();
        let (pipe, pipe_stats) = pool.diff_images(&a, &b).unwrap();

        // Bit-identical output rows across all three engines.
        prop_assert_eq!(&par, &seq);
        prop_assert_eq!(&pipe, &seq);
        // And against the pure-RLE reference.
        prop_assert_eq!(&pipe, &a.xor(&b).unwrap());

        // Stats invariants: per-row counters aggregate identically no
        // matter which engine scheduled the rows.
        prop_assert_eq!(par_stats.totals, seq_stats.totals);
        prop_assert_eq!(pipe_stats.totals, seq_stats.totals);
        prop_assert_eq!(pipe_stats.max_row_iterations, seq_stats.max_row_iterations);
        prop_assert_eq!(pipe_stats.rows, a.height());
        prop_assert_eq!(pipe_stats.rows_systolic_kernel, a.height());
        prop_assert_eq!(pipe_stats.workers, threads);
        prop_assert!(pipe_stats.effective_workers <= threads);
        if a.height() > 0 {
            prop_assert!(pipe_stats.effective_workers >= 1);
        }
        // Theorem 1 holds in aggregate: total iterations never exceed the
        // summed per-row bounds.
        prop_assert!(pipe_stats.totals.within_theorem1());

        // Every kernel policy — hybrid, forced-RLE, forced-packed — is
        // bit-identical to the reference; only scheduling and per-row
        // algorithm differ.
        for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed] {
            let mut pool = DiffPipelineConfig::new(threads).kernel(kernel).build();
            let (img, stats) = pool.diff_images(&a, &b).unwrap();
            prop_assert_eq!(&img, &seq, "kernel {:?}", kernel);
            prop_assert_eq!(stats.rows, a.height());
            // The adaptive policy only picks the packed kernel when it is
            // cheaper than the merge, so its host iteration totals stay
            // within the machine's Theorem-1 budget. (Forcing Packed on
            // sparse rows legitimately exceeds it.)
            if kernel != Kernel::Packed {
                prop_assert!(stats.totals.within_theorem1(), "kernel {:?}", kernel);
            }
        }
    }
}

#[test]
fn pipeline_is_reusable_and_stable_across_batches() {
    // One pool serving many images — the deployment shape the pipeline
    // exists for. Results must not depend on what the pool processed
    // before (register buffers are reloaded, not leaked).
    let mut pool = DiffPipeline::new(3);
    let mut gen = rle_systolic::workload::RowGenerator::new(
        rle_systolic::workload::GenParams::for_density(WIDTH, 0.3),
        42,
    );
    let images: Vec<RleImage> = (0..4).map(|_| gen.next_image(16)).collect();
    for window in images.windows(2) {
        let (expected, _) = xor_image(&window[0], &window[1]).unwrap();
        let (first, _) = pool.diff_images(&window[0], &window[1]).unwrap();
        let (second, stats) = pool.diff_images(&window[0], &window[1]).unwrap();
        assert_eq!(first, expected);
        assert_eq!(second, expected, "repeat batch on a warm pool must agree");
        assert_eq!(stats.rows, 16);
    }
}
