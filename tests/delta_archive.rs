//! End-to-end contract of the delta archive against realistic sequences:
//! a 100-frame churn-controlled stream must replay bit-identically from
//! every keyframe distance, survive serialization, re-keyframe without
//! content drift, and reject corrupted bytes with typed errors — plus the
//! shared edge-case contract of both stores (in-memory `DeltaArchive` and
//! the RDA2 journal): out-of-range indexing, degenerate compaction, the
//! RDA1→RDA2 migration path, and the keyframe replay bound on a long
//! archive.

use rle_systolic::archive::{
    ArchiveError, ArchiveFile, ArchiveOptions, DeltaArchive, FsyncPolicy, MemStorage,
};
use rle_systolic::rle::RleImage;
use rle_systolic::workload::{FrameSequence, GenParams, SequenceParams};

fn frames(n: usize, churn: f64, seed: u64) -> Vec<RleImage> {
    let params = SequenceParams {
        gen: GenParams::for_density(1_024, 0.3),
        height: 48,
        churn,
    };
    FrameSequence::new(params, seed).take_frames(n)
}

#[test]
fn hundred_frame_sequence_replays_bit_identically() {
    let stream = frames(100, 0.10, 0xA5C1);
    let mut store = DeltaArchive::new(16);
    for (i, f) in stream.iter().enumerate() {
        let outcome = store.append(f).expect("append");
        assert_eq!(outcome.keyframe, i % 16 == 0);
        if !outcome.keyframe {
            // 10% churn of 48 rows = at most 5 redrawn rows per frame.
            assert!(
                outcome.changed_rows <= 5,
                "frame {i}: {}",
                outcome.changed_rows
            );
        }
    }
    // Every frame — keyframes, mid-chain deltas, the frame right before a
    // keyframe (the longest replay) — reconstructs exactly.
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&store.extract(i).expect("extract"), f, "frame {i}");
    }
    // And again through bytes.
    let bytes = store.to_bytes();
    let back = DeltaArchive::from_bytes(&bytes).expect("decode");
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&back.extract(i).expect("extract"), f, "decoded frame {i}");
    }
    // The whole point: 10% churn stores ~10% of the rows (plus keyframes).
    let stats = back.stat();
    let full_rows = stats.frames * stats.height;
    let stored_rows = stats.keyframes * stats.height + stats.delta_rows;
    assert!(
        stored_rows * 4 < full_rows,
        "delta storage must be well under a quarter of full storage \
         ({stored_rows} of {full_rows} row-slots)"
    );
}

#[test]
fn compaction_rekeys_a_long_archive_without_drift() {
    let stream = frames(40, 0.25, 0xC0DE);
    // Written with a pathological interval: one keyframe, 39 deltas.
    let mut store = DeltaArchive::new(1_000);
    for f in &stream {
        store.append(f).expect("append");
    }
    assert_eq!(store.stat().keyframes, 1);
    store.compact(8).expect("compact");
    assert_eq!(store.stat().keyframes, 5);
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(
            &store.extract(i).expect("extract"),
            f,
            "frame {i} after compact"
        );
    }
}

#[test]
fn corrupted_bytes_are_typed_errors_never_panics() {
    let stream = frames(12, 0.15, 0xBAD);
    let mut store = DeltaArchive::new(4);
    for f in &stream {
        store.append(f).expect("append");
    }
    let bytes = store.to_bytes();

    // Every truncation point fails typed.
    for cut in 0..bytes.len() {
        assert!(
            DeltaArchive::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    // Single-bit flips either fail typed or decode to an archive whose
    // frames still extract or error typed — never a panic. (A flip inside
    // an early frame's payload can go unnoticed at load, which only
    // verifies the newest frame; extraction's signature check is the
    // backstop, exercised here for every frame.)
    for stride in [1usize, 7, 13] {
        for pos in (0..bytes.len()).step_by(stride.max(bytes.len() / 97).max(1)) {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            if let Ok(decoded) = DeltaArchive::from_bytes(&evil) {
                for i in 0..decoded.len() {
                    let _ = decoded.extract(i);
                }
            }
        }
    }

    // A flip inside a mid-chain delta payload is caught by extraction's
    // signature verification even when load-time checks pass it through.
    let mut tail_ok = bytes.clone();
    // Find a byte whose flip load succeeds but some extract fails; sweep
    // until we exhibit at least one SignatureMismatch, proving the
    // signature index is a real integrity check, not decoration.
    let mut caught = false;
    for pos in 12..bytes.len() {
        tail_ok.copy_from_slice(&bytes);
        tail_ok[pos] ^= 0x01;
        if let Ok(decoded) = DeltaArchive::from_bytes(&tail_ok) {
            for i in 0..decoded.len() {
                if matches!(
                    decoded.extract(i),
                    Err(ArchiveError::SignatureMismatch { .. })
                ) {
                    caught = true;
                    break;
                }
            }
        }
        if caught {
            break;
        }
    }
    assert!(caught, "no bit flip ever tripped the signature index");
}

/// Out-of-range indexing on empty and single-frame stores, for both the
/// in-memory archive and the journal: always `FrameOutOfRange` carrying
/// the right bounds, never a panic or a wrong frame.
#[test]
fn out_of_range_indexing_is_typed_on_empty_and_single_frame_stores() {
    let one = frames(1, 0.0, 0xE1).remove(0);

    let empty = DeltaArchive::new(4);
    assert_eq!(empty.len(), 0);
    for probe in [0usize, 1, usize::MAX] {
        assert!(matches!(
            empty.extract(probe),
            Err(ArchiveError::FrameOutOfRange { frames: 0, .. })
        ));
        assert!(matches!(
            empty.signatures(probe),
            Err(ArchiveError::FrameOutOfRange { frames: 0, .. })
        ));
    }
    let mut single = DeltaArchive::new(4);
    single.append(&one).expect("append");
    assert_eq!(&single.extract(0).expect("extract"), &one);
    assert_eq!(single.signatures(0).expect("sigs").len(), one.height());
    assert!(matches!(
        single.extract(1),
        Err(ArchiveError::FrameOutOfRange {
            index: 1,
            frames: 1
        })
    ));
    assert!(matches!(
        single.signatures(1),
        Err(ArchiveError::FrameOutOfRange {
            index: 1,
            frames: 1
        })
    ));

    let opts = ArchiveOptions {
        keyframe_interval: 4,
        fsync: FsyncPolicy::OnClose,
    };
    let mut journal = ArchiveFile::create_on(MemStorage::new(), opts).expect("create");
    assert!(matches!(
        journal.extract(0),
        Err(ArchiveError::FrameOutOfRange { frames: 0, .. })
    ));
    assert!(matches!(
        journal.signatures(0),
        Err(ArchiveError::FrameOutOfRange { frames: 0, .. })
    ));
    journal.append(&one).expect("append");
    assert_eq!(&journal.extract(0).expect("extract"), &one);
    assert!(matches!(
        journal.extract(1),
        Err(ArchiveError::FrameOutOfRange {
            index: 1,
            frames: 1
        })
    ));
    assert!(matches!(
        journal.signatures(usize::MAX),
        Err(ArchiveError::FrameOutOfRange { frames: 1, .. })
    ));
}

/// Compacting with an interval larger than the archive degenerates to
/// "one keyframe, everything else a delta" and stays bit-identical, in
/// both stores.
#[test]
fn compact_with_interval_beyond_the_archive_is_sound() {
    let stream = frames(6, 0.2, 0xC0);
    let mut store = DeltaArchive::new(2);
    for f in &stream {
        store.append(f).expect("append");
    }
    assert_eq!(store.stat().keyframes, 3);
    store.compact(1_000).expect("compact");
    assert_eq!(
        store.stat().keyframes,
        1,
        "one governing keyframe is enough"
    );
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&store.extract(i).expect("extract"), f, "frame {i}");
    }

    let opts = ArchiveOptions {
        keyframe_interval: 2,
        fsync: FsyncPolicy::OnClose,
    };
    let mut journal = ArchiveFile::create_on(MemStorage::new(), opts).expect("create");
    for f in &stream {
        journal.append(f).expect("append");
    }
    let mut compacted = journal
        .compact_into(MemStorage::new(), 1_000)
        .expect("compact_into");
    assert_eq!(compacted.stat().keyframes, 1);
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(
            &compacted.extract(i).expect("extract"),
            f,
            "journal frame {i}"
        );
    }
}

/// RDA1 → RDA2 migration: an old `to_bytes` blob imports into a journal
/// and every frame survives the trip — including back out through the
/// journal's own recovery path after a reopen.
#[test]
fn rda1_blobs_migrate_into_the_journal_round_trip() {
    let stream = frames(30, 0.15, 0x314A);
    let mut old = DeltaArchive::new(8);
    for f in &stream {
        old.append(f).expect("append");
    }
    let blob = old.to_bytes();

    let legacy = DeltaArchive::from_bytes(&blob).expect("RDA1 decode");
    let opts = ArchiveOptions {
        keyframe_interval: 8,
        fsync: FsyncPolicy::OnClose,
    };
    let mut journal = ArchiveFile::create_on(MemStorage::new(), opts).expect("create");
    let imported = journal.import(&legacy).expect("import");
    assert_eq!(imported, stream.len());
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&journal.extract(i).expect("extract"), f, "imported {i}");
    }
    // And through a sync → reopen cycle of the journal bytes: the
    // migrated archive must survive its own recovery path.
    journal.sync().expect("sync");
    let storage = journal.into_storage();
    let mut back = ArchiveFile::open_on(storage, opts).expect("reopen");
    assert!(back.recovery().clean(), "migration left nothing torn");
    assert_eq!(back.len(), stream.len());
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&back.extract(i).expect("extract"), f, "reopened {i}");
    }
}

/// The replay bound on a genuinely long archive: 200 frames, interval 16,
/// and the worst-case extraction (the frame right before a keyframe)
/// replays exactly `interval` records — seek to the governing keyframe,
/// never a scan from frame 0.
#[test]
fn long_archive_extraction_replays_at_most_one_interval() {
    const N: usize = 200;
    const INTERVAL: usize = 16;
    let stream = frames(N, 0.2, 0x10_06);
    let opts = ArchiveOptions {
        keyframe_interval: INTERVAL,
        fsync: FsyncPolicy::OnClose,
    };
    let mut journal = ArchiveFile::create_on(MemStorage::new(), opts).expect("create");
    for f in &stream {
        journal.append(f).expect("append");
    }
    // Worst case: the last frame of a full chain (191 = 12·16 − 1 → its
    // keyframe is 176, fifteen deltas behind).
    let worst = 12 * INTERVAL - 1;
    let before = journal.stat().records_replayed;
    assert_eq!(&journal.extract(worst).expect("extract"), &stream[worst]);
    let replayed = journal.stat().records_replayed - before;
    assert_eq!(
        replayed, INTERVAL as u64,
        "worst-case extract must replay exactly one interval"
    );
    // And the best case — a keyframe — replays exactly one record, no
    // matter how deep in the archive it sits.
    let key = 11 * INTERVAL;
    let before = journal.stat().records_replayed;
    assert_eq!(&journal.extract(key).expect("extract"), &stream[key]);
    assert_eq!(journal.stat().records_replayed - before, 1);
}

#[test]
fn zero_churn_archives_are_tiny() {
    let stream = frames(20, 0.0, 0x5AFE);
    let mut store = DeltaArchive::new(10);
    for f in &stream {
        store.append(f).expect("append");
    }
    let stats = store.stat();
    assert_eq!(stats.delta_rows, 0, "nothing changed, nothing stored");
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&store.extract(i).expect("extract"), f, "frame {i}");
    }
}
