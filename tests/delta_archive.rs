//! End-to-end contract of the delta archive against realistic sequences:
//! a 100-frame churn-controlled stream must replay bit-identically from
//! every keyframe distance, survive serialization, re-keyframe without
//! content drift, and reject corrupted bytes with typed errors.

use rle_systolic::archive::{ArchiveError, DeltaArchive};
use rle_systolic::rle::RleImage;
use rle_systolic::workload::{FrameSequence, GenParams, SequenceParams};

fn frames(n: usize, churn: f64, seed: u64) -> Vec<RleImage> {
    let params = SequenceParams {
        gen: GenParams::for_density(1_024, 0.3),
        height: 48,
        churn,
    };
    FrameSequence::new(params, seed).take_frames(n)
}

#[test]
fn hundred_frame_sequence_replays_bit_identically() {
    let stream = frames(100, 0.10, 0xA5C1);
    let mut store = DeltaArchive::new(16);
    for (i, f) in stream.iter().enumerate() {
        let outcome = store.append(f).expect("append");
        assert_eq!(outcome.keyframe, i % 16 == 0);
        if !outcome.keyframe {
            // 10% churn of 48 rows = at most 5 redrawn rows per frame.
            assert!(
                outcome.changed_rows <= 5,
                "frame {i}: {}",
                outcome.changed_rows
            );
        }
    }
    // Every frame — keyframes, mid-chain deltas, the frame right before a
    // keyframe (the longest replay) — reconstructs exactly.
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&store.extract(i).expect("extract"), f, "frame {i}");
    }
    // And again through bytes.
    let bytes = store.to_bytes();
    let back = DeltaArchive::from_bytes(&bytes).expect("decode");
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&back.extract(i).expect("extract"), f, "decoded frame {i}");
    }
    // The whole point: 10% churn stores ~10% of the rows (plus keyframes).
    let stats = back.stat();
    let full_rows = stats.frames * stats.height;
    let stored_rows = stats.keyframes * stats.height + stats.delta_rows;
    assert!(
        stored_rows * 4 < full_rows,
        "delta storage must be well under a quarter of full storage \
         ({stored_rows} of {full_rows} row-slots)"
    );
}

#[test]
fn compaction_rekeys_a_long_archive_without_drift() {
    let stream = frames(40, 0.25, 0xC0DE);
    // Written with a pathological interval: one keyframe, 39 deltas.
    let mut store = DeltaArchive::new(1_000);
    for f in &stream {
        store.append(f).expect("append");
    }
    assert_eq!(store.stat().keyframes, 1);
    store.compact(8).expect("compact");
    assert_eq!(store.stat().keyframes, 5);
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(
            &store.extract(i).expect("extract"),
            f,
            "frame {i} after compact"
        );
    }
}

#[test]
fn corrupted_bytes_are_typed_errors_never_panics() {
    let stream = frames(12, 0.15, 0xBAD);
    let mut store = DeltaArchive::new(4);
    for f in &stream {
        store.append(f).expect("append");
    }
    let bytes = store.to_bytes();

    // Every truncation point fails typed.
    for cut in 0..bytes.len() {
        assert!(
            DeltaArchive::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    // Single-bit flips either fail typed or decode to an archive whose
    // frames still extract or error typed — never a panic. (A flip inside
    // an early frame's payload can go unnoticed at load, which only
    // verifies the newest frame; extraction's signature check is the
    // backstop, exercised here for every frame.)
    for stride in [1usize, 7, 13] {
        for pos in (0..bytes.len()).step_by(stride.max(bytes.len() / 97).max(1)) {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            if let Ok(decoded) = DeltaArchive::from_bytes(&evil) {
                for i in 0..decoded.len() {
                    let _ = decoded.extract(i);
                }
            }
        }
    }

    // A flip inside a mid-chain delta payload is caught by extraction's
    // signature verification even when load-time checks pass it through.
    let mut tail_ok = bytes.clone();
    // Find a byte whose flip load succeeds but some extract fails; sweep
    // until we exhibit at least one SignatureMismatch, proving the
    // signature index is a real integrity check, not decoration.
    let mut caught = false;
    for pos in 12..bytes.len() {
        tail_ok.copy_from_slice(&bytes);
        tail_ok[pos] ^= 0x01;
        if let Ok(decoded) = DeltaArchive::from_bytes(&tail_ok) {
            for i in 0..decoded.len() {
                if matches!(
                    decoded.extract(i),
                    Err(ArchiveError::SignatureMismatch { .. })
                ) {
                    caught = true;
                    break;
                }
            }
        }
        if caught {
            break;
        }
    }
    assert!(caught, "no bit flip ever tripped the signature index");
}

#[test]
fn zero_churn_archives_are_tiny() {
    let stream = frames(20, 0.0, 0x5AFE);
    let mut store = DeltaArchive::new(10);
    for f in &stream {
        store.append(f).expect("append");
    }
    let stats = store.stat();
    assert_eq!(stats.delta_rows, 0, "nothing changed, nothing stored");
    for (i, f) in stream.iter().enumerate() {
        assert_eq!(&store.extract(i).expect("extract"), f, "frame {i}");
    }
}
