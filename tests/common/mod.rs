//! Shared proptest strategies and helpers for the integration suites.
//!
//! Each integration binary compiles this module independently and uses a
//! different subset of the helpers, so unused-by-this-binary items are
//! expected.
#![allow(dead_code)]

use proptest::prelude::*;
use rle_systolic::rle::{Pixel, RleRow, Run};

/// Strategy: a valid RLE row of the given width built from (gap, len)
/// pieces. Gaps of ≥ 1 keep the row canonical; `allow_adjacent` permits
/// zero gaps after the first run, producing valid but non-canonical rows
/// (which the paper explicitly allows as input).
pub fn rle_row(
    width: Pixel,
    max_runs: usize,
    allow_adjacent: bool,
) -> impl Strategy<Value = RleRow> {
    let min_gap = usize::from(!allow_adjacent);
    prop::collection::vec((min_gap..=9usize, 1usize..=8usize), 0..=max_runs).prop_map(
        move |pieces| {
            let mut row = RleRow::new(width);
            let mut pos = 0u64;
            let mut first = true;
            for (gap, len) in pieces {
                // The first gap may be 0 (a run starting at pixel 0);
                // between runs a gap of 0 means adjacency, which is only
                // legal input when allowed — bump to 1 otherwise.
                let gap = if first { gap } else { gap.max(min_gap) } as u64;
                first = false;
                let start = pos + gap;
                let end = start + len as u64;
                if end > u64::from(width) {
                    break;
                }
                row.push_run(Run::new(start as Pixel, len as Pixel))
                    .unwrap();
                pos = end;
            }
            row
        },
    )
}

/// Strategy: a pair of equally-wide rows.
pub fn row_pair(width: Pixel, max_runs: usize) -> impl Strategy<Value = (RleRow, RleRow)> {
    (
        rle_row(width, max_runs, true),
        rle_row(width, max_runs, true),
    )
}

/// Strategy: a pair of *canonical* equally-wide rows (the Observation's
/// precondition).
pub fn canonical_pair(width: Pixel, max_runs: usize) -> impl Strategy<Value = (RleRow, RleRow)> {
    (
        rle_row(width, max_runs, false),
        rle_row(width, max_runs, false),
    )
}

/// Reference XOR through the dense bitmap domain.
pub fn dense_xor(a: &RleRow, b: &RleRow) -> RleRow {
    let da = rle_systolic::bitimg::convert::decode_row(a);
    let db = rle_systolic::bitimg::convert::decode_row(b);
    rle_systolic::bitimg::convert::encode_row(&rle_systolic::bitimg::ops::xor_row(&da, &db))
}
