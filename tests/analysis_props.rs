//! Property tests of the analysis stages (components, features, matching,
//! 2-D morphology) against dense references, plus the full inspection
//! pipeline: systolic difference → clean-up → labelling → classification.

mod common;

use common::rle_row;
use proptest::prelude::*;
use rle_systolic::rle::RleImage;
use rle_systolic::rle_analysis::components::{label_components, Connectivity};
use rle_systolic::rle_analysis::{features, matching, morph2d};

fn image_strategy(width: u32, height: usize) -> impl Strategy<Value = RleImage> {
    prop::collection::vec(rle_row(width, 10, true), height..=height)
        .prop_map(move |rows| RleImage::from_rows(width, rows).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Labelling invariants: labels dense, areas sum to foreground, every
    /// run labelled, bounding boxes contain their runs.
    #[test]
    fn labeling_invariants(img in image_strategy(60, 12)) {
        for conn in [Connectivity::Four, Connectivity::Eight] {
            let l = label_components(&img, conn);
            let total_runs: usize = img.rows().iter().map(|r| r.run_count()).sum();
            prop_assert_eq!(l.runs.len(), total_runs);
            let area: u64 = l.components.iter().map(|c| c.area).sum();
            prop_assert_eq!(area, img.ones());
            for (i, c) in l.components.iter().enumerate() {
                prop_assert_eq!(c.label as usize, i, "labels must be dense");
                prop_assert!(c.x0 <= c.x1 && c.y0 <= c.y1);
                prop_assert!(c.cx >= f64::from(c.x0) && c.cx <= f64::from(c.x1));
                prop_assert!(c.cy >= c.y0 as f64 && c.cy <= c.y1 as f64);
            }
            for lr in &l.runs {
                let c = &l.components[lr.label as usize];
                prop_assert!(lr.run.start() >= c.x0 && lr.run.end() <= c.x1);
                prop_assert!(lr.row >= c.y0 && lr.row <= c.y1);
            }
        }
    }

    /// Eight-connectivity can only merge components, never split them.
    #[test]
    fn eight_connectivity_merges(img in image_strategy(60, 12)) {
        let four = label_components(&img, Connectivity::Four).count();
        let eight = label_components(&img, Connectivity::Eight).count();
        prop_assert!(eight <= four, "8-conn {eight} vs 4-conn {four}");
    }

    /// A template always matches itself perfectly somewhere in any image
    /// that embeds it.
    #[test]
    fn embedded_template_is_found(img in image_strategy(40, 8)) {
        // Carve a window out of the image and search for it.
        let template = RleImage::from_rows(
            10,
            img.rows()[2..6].iter().map(|r| r.crop(5, 10)).collect(),
        ).unwrap();
        let best = matching::best_match(&img, &template).unwrap();
        prop_assert_eq!(best.score, 0, "the source window must score 0");
        // The found placement genuinely scores zero.
        prop_assert_eq!(matching::score_at(&img, &template, best.x, best.y), 0);
    }

    /// Morphological ordering: erosion ⊆ original ⊆ dilation, and
    /// opening ⊆ original ⊆ closing (2-D, rectangular SE).
    #[test]
    fn morph2d_orderings(img in image_strategy(40, 8), rx in 0u32..3, ry in 0u32..3) {
        let dil = morph2d::dilate_rect(&img, rx, ry);
        let ero = morph2d::erode_rect(&img, rx, ry);
        let opened = morph2d::open_rect(&img, rx, ry);
        let closed = morph2d::close_rect(&img, rx, ry);
        // X ⊆ Y ⇔ X AND Y == X (on canonical forms — the generated image
        // may contain adjacent runs, while `and` emits canonical rows).
        let subset = |x: &RleImage, y: &RleImage| {
            let mut xc = x.clone();
            xc.canonicalize();
            xc.and(y).unwrap() == xc
        };
        prop_assert!(subset(&ero, &img), "erosion shrinks");
        prop_assert!(subset(&img, &dil), "dilation grows");
        prop_assert!(subset(&opened, &img), "opening is anti-extensive");
        // Closing is extensive only away from the image border under the
        // background-outside convention (a border pixel's dilated halo is
        // clipped, so the erosion step can eat it back). Restrict the claim
        // to the interior.
        let interior = {
            let mut m = rle_systolic::bitimg::Bitmap::new(img.width(), img.height());
            let (w, h) = (img.width(), img.height());
            if w > 2 * rx && h > 2 * ry as usize {
                m.fill_rect(rx, ry as usize, w - 2 * rx, h - 2 * ry as usize, true);
            }
            rle_systolic::bitimg::convert::encode(&m)
        };
        prop_assert!(
            subset(&img.and(&interior).unwrap(), &closed),
            "closing is extensive on the interior"
        );
    }

    /// Defect classification is total and consistent with area.
    #[test]
    fn classification_total(img in image_strategy(60, 12)) {
        let l = label_components(&img, Connectivity::Eight);
        for c in &l.components {
            let class = features::classify_defect(c);
            if c.area <= 2 {
                prop_assert_eq!(class, features::DefectClass::Speck);
            }
        }
        // filter + sort helpers agree with raw data.
        let sorted = features::by_area_desc(&l);
        prop_assert!(sorted.windows(2).all(|w| w[0].area >= w[1].area));
        let min_area = 3;
        let filtered = features::filter_by_area(&l, min_area);
        prop_assert_eq!(
            filtered.len(),
            l.components.iter().filter(|c| c.area >= min_area).count()
        );
    }
}

#[test]
fn inspection_pipeline_end_to_end() {
    use rle_systolic::workload::pcb::{inspection_pair, typical_defects, PcbParams};

    let params = PcbParams {
        width: 1024,
        height: 256,
        ..Default::default()
    };
    let (reference, scan) = inspection_pair(&params, &typical_defects(), 77);
    let (diff, _) = rle_systolic::systolic_core::image::xor_image(&reference, &scan).unwrap();

    // Clean single-pixel noise, then group into defects.
    let cleaned = morph2d::open_rect(&diff, 0, 0); // no-op radius: keep all
    let labeling = label_components(&cleaned, Connectivity::Eight);
    assert!(labeling.count() >= 1, "injected defects must be detected");
    assert!(
        labeling.count() <= 8,
        "defects must not shatter: {}",
        labeling.count()
    );
    // Every defect is tiny relative to the board.
    for c in &labeling.components {
        assert!(c.area < 200, "defect {c:?} implausibly large");
    }
}
