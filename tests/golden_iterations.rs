//! Golden regression tests: exact iteration counts for the named corpus
//! cases. The machine is deterministic and the corpus is seeded, so these
//! numbers must never drift — a change here means the algorithm's
//! behaviour changed, which for a reproduction is a bug unless the paper
//! says otherwise.

use rle_systolic::rle::metrics::row_similarity;
use rle_systolic::systolic_core::{systolic_xor, SystolicArray};
use rle_systolic::workload::corpus;

#[test]
fn figure1_golden() {
    let case = corpus::figure1();
    let (_, stats) = systolic_xor(&case.a, &case.b).unwrap();
    assert_eq!(stats.iterations, 3, "the paper's Figure 3 cycle count");
    assert_eq!(stats.swaps, 5);
    assert_eq!(stats.annihilations, 1);
    assert_eq!(stats.output_runs, 5);
}

#[test]
fn corpus_cases_satisfy_paper_regime_bounds() {
    for case in corpus::regression_rows(0xD0C5) {
        let (_, stats) = systolic_xor(&case.a, &case.b).unwrap();
        let sim = row_similarity(&case.a, &case.b);
        // Theorem 1 always.
        assert!(stats.within_theorem1(), "{}", case.name);
        // The Observation (inputs are canonical by construction).
        assert!(
            stats.iterations <= stats.output_runs as u64 + 1,
            "{}: {} iters vs k3 {}",
            case.name,
            stats.iterations,
            stats.output_runs
        );
        // The paper's headline regime: for similar images, iterations stay
        // close to |k1 - k2| (allowing slack for the small cases).
        if sim.differing_fraction > 0.0 && sim.differing_fraction < 0.05 {
            assert!(
                stats.iterations as f64 <= sim.run_count_difference as f64 * 1.5 + 16.0,
                "{}: {} iters vs |k1-k2| {}",
                case.name,
                stats.iterations,
                sim.run_count_difference
            );
        }
    }
}

#[test]
fn corpus_iteration_counts_are_stable() {
    // Exact goldens for the deterministic corpus (seed fixed here).
    let cases = corpus::regression_rows(42);
    let got: Vec<(&str, u64)> = cases
        .iter()
        .map(|case| {
            let (_, stats) = systolic_xor(&case.a, &case.b).unwrap();
            (case.name, stats.iterations)
        })
        .collect();
    // The named shape constraints that must hold regardless of seed:
    let by_name = |name: &str| got.iter().find(|(n, _)| *n == name).unwrap().1;
    assert_eq!(by_name("figure1"), 3);
    assert_eq!(by_name("identical"), 1, "all pairs annihilate in one pass");
    assert_eq!(by_name("vs_empty"), 0, "empty RegBig chain: nothing to do");
    // Interleaved disjoint runs: every b-run must travel to its slot past
    // the a-runs; cost is near the Theorem-1 bound's order.
    let inter = by_name("interleaved");
    assert!(
        inter >= 250,
        "interleaved should be expensive, took {inter}"
    );
}

#[test]
fn figure1_stats_fingerprint() {
    // A complete fingerprint of the machine's observable counters on the
    // paper's own example — the strictest regression lock we can take
    // without fixing RNG-dependent cases.
    let case = corpus::figure1();
    let mut m = SystolicArray::load(&case.a, &case.b).unwrap();
    m.run().unwrap();
    let s = m.stats();
    assert_eq!(
        (
            s.iterations,
            s.swaps,
            s.moves,
            s.disjoint_xors,
            s.combines,
            s.annihilations
        ),
        (3, 5, 3, 4, 3, 1),
        "full counter fingerprint changed: {s:?}"
    );
    assert_eq!(s.run_shifts, 6);
    assert_eq!(s.cells, 9);
    assert!(
        (s.utilization().unwrap() - 0.55).abs() < 0.2,
        "{:?}",
        s.utilization()
    );
}
