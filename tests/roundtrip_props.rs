//! Property tests of the substrates: representation round-trips, encoder
//! equivalence, boolean algebra, and PBM I/O.

mod common;

use common::rle_row;
use proptest::prelude::*;
use rle_systolic::bitimg::{convert, ops as dops, pbm, BitRow, Bitmap};
use rle_systolic::rle::{iter, ops, RleRow};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// RLE → bits → RLE is the canonical form of the original row.
    #[test]
    fn bits_round_trip(row in rle_row(300, 24, true)) {
        let back = RleRow::from_bits(&row.to_bits());
        prop_assert_eq!(back, row.canonicalized());
    }

    /// Word-scanning encoder ≡ naive bit encoder, via dense rows.
    #[test]
    fn fast_encoder_equivalence(row in rle_row(300, 24, true)) {
        let dense = convert::decode_row(&row);
        prop_assert_eq!(convert::encode_row(&dense), RleRow::from_bits(&dense.to_bits()));
        // And decode inverts encode.
        prop_assert_eq!(convert::decode_row(&convert::encode_row(&dense)), dense);
    }

    /// Dense and compressed boolean operations agree for all four ops.
    #[test]
    fn dense_vs_compressed_ops((a, b) in (rle_row(300, 24, true), rle_row(300, 24, true))) {
        let (da, db) = (convert::decode_row(&a), convert::decode_row(&b));
        let check = |rle_out: RleRow, dense_out: BitRow, name: &str| {
            prop_assert_eq!(convert::decode_row(&rle_out), dense_out, "{}", name);
            Ok(())
        };
        check(ops::xor(&a, &b), dops::xor_row(&da, &db), "xor")?;
        check(ops::and(&a, &b), dops::and_row(&da, &db), "and")?;
        check(ops::or(&a, &b), dops::or_row(&da, &db), "or")?;
        check(ops::sub(&a, &b), dops::sub_row(&da, &db), "sub")?;
        check(ops::not(&a), dops::not_row(&da), "not")?;
    }

    /// Boolean algebra laws in the compressed domain.
    #[test]
    fn boolean_algebra((a, b, c) in (rle_row(240, 16, true), rle_row(240, 16, true), rle_row(240, 16, true))) {
        // Distributivity: a ∧ (b ∨ c) = (a ∧ b) ∨ (a ∧ c)
        prop_assert_eq!(
            ops::and(&a, &ops::or(&b, &c)),
            ops::or(&ops::and(&a, &b), &ops::and(&a, &c))
        );
        // XOR associativity.
        prop_assert_eq!(
            ops::xor(&ops::xor(&a, &b), &c),
            ops::xor(&a, &ops::xor(&b, &c))
        );
        // De Morgan.
        prop_assert_eq!(ops::not(&ops::and(&a, &b)), ops::or(&ops::not(&a), &ops::not(&b)));
        // a \ b = a ∧ ¬b
        prop_assert_eq!(ops::sub(&a, &b), ops::and(&a, &ops::not(&b)));
    }

    /// Segments partition the row; gaps are the complement's runs.
    #[test]
    fn segments_partition(row in rle_row(300, 24, true)) {
        let segs: Vec<iter::Segment> = iter::segments(&row).collect();
        let mut pos = 0u32;
        for s in &segs {
            prop_assert_eq!(s.start, pos, "segments must be contiguous");
            pos = s.end + 1;
        }
        prop_assert_eq!(pos, row.width());
        let fg: u64 = segs.iter().filter(|s| s.value).map(|s| u64::from(s.len())).sum();
        prop_assert_eq!(fg, row.ones());
        let gap_runs: Vec<_> = iter::gaps(&row).collect();
        prop_assert_eq!(gap_runs, ops::not(&row).runs().to_vec());
    }

    /// Canonicalization is idempotent and preserves the pixel set.
    #[test]
    fn canonicalization(row in rle_row(300, 24, true)) {
        let canon = row.canonicalized();
        prop_assert!(canon.is_canonical());
        prop_assert_eq!(canon.to_bits(), row.to_bits());
        prop_assert_eq!(canon.canonicalized(), canon.clone());
        prop_assert!(canon.run_count() <= row.run_count());
    }

    /// PBM P1 and P4 round-trip arbitrary bitmaps.
    #[test]
    fn pbm_round_trips(rows in prop::collection::vec(rle_row(77, 8, true), 1..6)) {
        let mut bm = Bitmap::new(77, rows.len());
        for (y, row) in rows.iter().enumerate() {
            bm.set_row(y, &convert::decode_row(row));
        }
        let mut p1 = Vec::new();
        pbm::write_p1(&bm, &mut p1).unwrap();
        prop_assert_eq!(pbm::read(&mut &p1[..]).unwrap(), bm.clone());
        let mut p4 = Vec::new();
        pbm::write_p4(&bm, &mut p4).unwrap();
        prop_assert_eq!(pbm::read(&mut &p4[..]).unwrap(), bm);
    }

    /// The compact serialization round-trips any row and image, and the
    /// decoder never panics or mis-accepts on arbitrary byte soup.
    #[test]
    fn serialize_round_trip_and_fuzz(
        rows in prop::collection::vec(rle_row(5_000, 30, true), 1..5),
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        use rle_systolic::rle::serialize;
        // Round trips.
        for row in &rows {
            prop_assert_eq!(&serialize::decode_row(&serialize::encode_row(row)).unwrap(), row);
        }
        let img = rle_systolic::rle::RleImage::from_rows(5_000, rows.clone()).unwrap();
        let bytes = serialize::encode_image(&img);
        prop_assert_eq!(&serialize::decode_image(&bytes).unwrap(), &img);
        // Every truncation fails cleanly (no panic, no silent success).
        for cut in [0, 1, 4, 8, bytes.len().saturating_sub(1)] {
            prop_assert!(serialize::decode_image(&bytes[..cut.min(bytes.len() - 1)]).is_err());
        }
        // Arbitrary bytes must never panic (errors are fine; the rare
        // accidentally-valid stream is fine too).
        let _ = serialize::decode_row(&garbage);
        let _ = serialize::decode_image(&garbage);
        // Prepending a valid magic must still not panic.
        let mut with_magic = b"RLI1".to_vec();
        with_magic.extend_from_slice(&garbage);
        let _ = serialize::decode_image(&with_magic);
    }

    /// Cropping matches bit-level slicing for arbitrary windows, and
    /// concatenating adjacent crops loses nothing.
    #[test]
    fn crop_matches_bit_slices(row in rle_row(300, 24, true), start in 0u32..320, len in 0u32..340) {
        let cropped = row.crop(start, len);
        prop_assert_eq!(cropped.width(), len);
        let bits = row.to_bits();
        let want: Vec<bool> = (0..len)
            .map(|i| {
                let p = u64::from(start) + u64::from(i);
                p < 300 && bits[p as usize]
            })
            .collect();
        prop_assert_eq!(cropped.to_bits(), want);
        // Two adjacent windows cover the same pixels as one double window.
        if len > 0 && start + 2 * len <= 300 {
            let left = row.crop(start, len);
            let right = row.crop(start + len, len);
            let both = row.crop(start, 2 * len);
            let mut rebuilt = left.to_bits();
            rebuilt.extend(right.to_bits());
            prop_assert_eq!(rebuilt, both.to_bits());
        }
    }

    /// Parallel dense XOR is identical to the word loop for any geometry.
    #[test]
    fn parallel_dense_xor(rows in prop::collection::vec(rle_row(200, 12, true), 1..5), threads in 1usize..5) {
        let mut a = Bitmap::new(200, rows.len());
        let mut b = Bitmap::new(200, rows.len());
        for (y, row) in rows.iter().enumerate() {
            a.set_row(y, &convert::decode_row(row));
            b.set_row(rows.len() - 1 - y, &convert::decode_row(row));
        }
        prop_assert_eq!(
            rle_systolic::bitimg::par::xor(&a, &b, threads),
            dops::xor(&a, &b)
        );
        prop_assert_eq!(
            rle_systolic::bitimg::par::hamming(&a, &b, threads),
            dops::hamming(&a, &b)
        );
    }
}
