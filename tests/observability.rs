//! Invariant audit of the observability layer: the metrics ledger and the
//! structured trace are *verified against each other* and against the
//! pipeline's own accounting, not just emitted.
//!
//! The identities exercised here (all on quiescent pipelines — drained,
//! nothing in flight):
//!
//! * every histogram's bucket total equals its count;
//! * `row_latency_ns.count == row_runs.count ==
//!   rows_diffed + rows_inline_diffed`;
//! * the four kernel counters partition
//!   `rows_diffed + rows_inline_diffed` (worker-side diffs plus the
//!   prefilter's host-side inline residuals);
//! * `rows_diffed == rows_completed + rows_discarded` (the all-or-nothing
//!   chunk-retry ledger closes exactly, even under injected faults);
//! * `rows_completed + rows_errored == rows_submitted` after a full drain;
//! * `chunk_latency_ns.count == chunks_completed`;
//! * retry/respawn/timeout counters equal both the matching trace-event
//!   counts and [`SupervisionCounters`];
//! * per row, the trace is causally ordered:
//!   `Submit < Checkout < Kernel < ChunkDone` by sequence number;
//! * `jobs_submitted == jobs_completed + jobs_abandoned` — the job-level
//!   ledger the multi-image executor adds on top of the row ledger.
//!
//! Plus the PR's satellite audits: the paper's §5 Observation re-checked
//! through the observed pipeline (per-row `iterations ≤ k3 + 1`), the
//! `PipelineStats` kernel-accounting identity across kernels × threads ×
//! uneven heights, a deterministic multi-submitter stress drill, and the
//! job-granular audit: per-job `PipelineStats` identities close for every
//! job on a shared [`DiffExecutor`] *and* their sums reconcile with the
//! one shared metrics registry.

mod common;

use common::canonical_pair;
use proptest::prelude::*;
use rle_systolic::rle::RleImage;
use rle_systolic::systolic_core::image::xor_image;
use rle_systolic::systolic_core::obs::ObsConfig;
use rle_systolic::systolic_core::{
    DiffExecutor, DiffExecutorConfig, DiffPipelineConfig, Kernel, MetricsSnapshot, PipelineStats,
    TraceEvent, TraceKind,
};
use rle_systolic::workload::{errors, ErrorModel, GenParams, RowGenerator};
use std::sync::{Arc, Mutex};

fn image_pair(width: u32, height: usize, seed: u64) -> (RleImage, RleImage) {
    let params = GenParams::for_density(width, 0.3);
    let a = RowGenerator::new(params, seed).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.05), seed ^ 0xBEEF);
    (a, b)
}

/// The histogram/counter identities every quiescent snapshot must satisfy,
/// regardless of workload or fault history.
fn assert_ledger_closed(s: &MetricsSnapshot) {
    for (name, h) in [
        ("row_latency_ns", &s.row_latency_ns),
        ("chunk_latency_ns", &s.chunk_latency_ns),
        ("row_runs", &s.row_runs),
    ] {
        assert_eq!(
            h.bucket_total(),
            h.count,
            "{name}: buckets must sum to count"
        );
    }
    assert_eq!(
        s.row_latency_ns.count,
        s.rows_diffed + s.rows_inline_diffed,
        "one latency sample per successful diff (worker or inline)"
    );
    assert_eq!(
        s.row_runs.count,
        s.rows_diffed + s.rows_inline_diffed,
        "one run-count sample per successful diff (worker or inline)"
    );
    assert_eq!(
        s.kernel_rows(),
        s.rows_diffed + s.rows_inline_diffed,
        "kernel counters must partition the diffed rows"
    );
    assert_eq!(
        s.rows_diffed,
        s.rows_completed + s.rows_discarded,
        "every diffed row is either delivered or discarded by a chunk crash"
    );
    assert_eq!(
        s.chunk_latency_ns.count, s.chunks_completed,
        "one chunk latency sample per completed chunk"
    );
    assert_eq!(
        s.rows_submitted,
        s.rows_completed + s.rows_errored + s.rows_abandoned,
        "every accepted row is delivered, errored, or written off by an abort"
    );
    assert_eq!(
        s.jobs_submitted,
        s.jobs_completed + s.jobs_abandoned,
        "every ledgered job either completes or is abandoned, exactly once"
    );
    assert_eq!(s.queue_depth, 0, "quiescent: empty queue");
    assert_eq!(s.in_flight, 0, "quiescent: nothing in flight");
}

/// Counts trace events matching `pred`.
fn count(events: &[TraceEvent], pred: impl Fn(&TraceKind) -> bool) -> u64 {
    events.iter().filter(|e| pred(&e.kind)).count() as u64
}

#[test]
fn clean_batches_reconcile_across_kernels() {
    let (a, b) = image_pair(768, 24, 0x0B5E);
    let expected = xor_image(&a, &b).unwrap().0;
    for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed, Kernel::Systolic] {
        let mut pipeline = DiffPipelineConfig::new(3).kernel(kernel).observe().build();
        let obs = pipeline.observer().expect("observer attached");
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, expected, "{kernel:?}");

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        assert_eq!(s.batches, 1);
        assert_eq!(s.rows_submitted, 24);
        assert_eq!(s.rows_completed, 24);
        assert_eq!(s.rows_errored, 0);
        assert_eq!(s.rows_discarded, 0, "no faults, no discards");
        assert_eq!(s.retries + s.respawns + s.timeouts, 0);
        // The metrics agree with the pipeline's own per-batch accounting.
        assert_eq!(s.rows_fast_path, stats.rows_fast_path as u64, "{kernel:?}");
        assert_eq!(s.rows_rle_kernel, stats.rows_rle_kernel as u64);
        assert_eq!(s.rows_packed_kernel, stats.rows_packed_kernel as u64);
        assert_eq!(s.rows_systolic_kernel, stats.rows_systolic_kernel as u64);
        assert_eq!(s.chunks_dispatched, stats.chunks as u64);
        assert_eq!(s.chunks_completed, stats.chunks as u64);

        // Exposition round-trips the same numbers.
        let prom = s.to_prometheus();
        assert!(
            prom.contains("diffpipeline_rows_completed_total 24"),
            "{prom}"
        );
        let json = s.to_json();
        assert!(json.contains("\"rows_completed\": 24"), "{json}");
    }
}

#[test]
fn metrics_accumulate_across_batches_and_streaming() {
    let (a, b) = image_pair(512, 10, 0xACC0);
    let a_arc = Arc::new(a.clone());
    let b_arc = Arc::new(b.clone());
    let mut pipeline = DiffPipelineConfig::new(2).observe().build();
    let obs = pipeline.observer().unwrap();

    pipeline.diff_images(&a, &b).unwrap();
    pipeline.diff_images_shared(&a_arc, &b_arc).unwrap();
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        pipeline.submit(ra.clone(), rb.clone());
    }
    let outcomes = pipeline.drain();
    assert_eq!(outcomes.len(), 10);

    let s = obs.metrics_snapshot();
    assert_ledger_closed(&s);
    assert_eq!(s.batches, 2, "streaming submits are not batches");
    assert_eq!(s.rows_submitted, 30);
    assert_eq!(s.rows_completed, 30);
    // Each streaming submit is its own single-row chunk.
    let events = obs.trace_snapshot();
    assert_eq!(
        count(&events, |k| matches!(k, TraceKind::Submit { .. })),
        30
    );
    let drains: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Drain { collected } => Some(collected),
            _ => None,
        })
        .collect();
    assert_eq!(drains, vec![10], "one drain, reporting its row count");
}

#[test]
fn trace_is_causally_ordered_per_row() {
    let (a, b) = image_pair(640, 16, 0xCA5A);
    let mut pipeline = DiffPipelineConfig::new(4).observe().build();
    let obs = pipeline.observer().unwrap();
    pipeline.diff_images(&a, &b).unwrap();
    let events = obs.trace_snapshot();

    // Sequence numbers are unique and timestamps non-decreasing along them.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "events sorted by seq");
        assert!(pair[0].at_ns <= pair[1].at_ns, "clock is monotonic");
    }

    // Per ticket: Submit < covering Checkout < Kernel < covering ChunkDone.
    // A clean run has exactly one of each per row/chunk.
    for ticket in 0..16u64 {
        let submit = events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::Submit { ticket: t } if t == ticket))
            .unwrap_or_else(|| panic!("row {ticket}: no submit event"));
        let checkout = events
            .iter()
            .find(|e| {
                matches!(e.kind, TraceKind::Checkout { chunk, rows, .. }
                    if chunk <= ticket && ticket < chunk + u64::from(rows))
            })
            .unwrap_or_else(|| panic!("row {ticket}: no covering checkout"));
        let kernel = events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::Kernel { ticket: t, .. } if t == ticket))
            .unwrap_or_else(|| panic!("row {ticket}: no kernel event"));
        let done = events
            .iter()
            .find(|e| {
                matches!(e.kind, TraceKind::ChunkDone { chunk, rows, .. }
                    if chunk <= ticket && ticket < chunk + u64::from(rows))
            })
            .unwrap_or_else(|| panic!("row {ticket}: no covering chunk-done"));
        assert!(
            submit.seq < checkout.seq && checkout.seq < kernel.seq && kernel.seq < done.seq,
            "row {ticket}: causal chain violated \
             (submit {} checkout {} kernel {} done {})",
            submit.seq,
            checkout.seq,
            kernel.seq,
            done.seq
        );
        // The kernel event's worker matches its checkout's worker.
        let (TraceKind::Checkout { worker: cw, .. }, TraceKind::Kernel { worker: kw, .. }) =
            (checkout.kind, kernel.kind)
        else {
            unreachable!("matched above");
        };
        assert_eq!(cw, kw, "row {ticket}: kernel ran on the checked-out worker");
    }
}

#[test]
fn trace_ring_wraps_without_corrupting_accounting() {
    let (a, b) = image_pair(512, 32, 0x0F10);
    let mut pipeline = DiffPipelineConfig::new(2)
        .observe_with(ObsConfig { trace_capacity: 16 })
        .build();
    let obs = pipeline.observer().unwrap();
    pipeline.diff_images(&a, &b).unwrap();

    let s = obs.metrics_snapshot();
    assert_ledger_closed(&s);
    let events = obs.trace_snapshot();
    assert_eq!(events.len(), 16, "ring retains exactly its capacity");
    assert_eq!(
        s.trace_recorded,
        s.trace_dropped + events.len() as u64,
        "recorded = retained + overwritten"
    );
    assert!(s.trace_dropped > 0, "32 rows must overflow 16 slots");
    // The retained window is the most recent events, still in order.
    for pair in events.windows(2) {
        assert_eq!(
            pair[1].seq,
            pair[0].seq + 1,
            "retained window is contiguous"
        );
    }
    assert_eq!(events.last().unwrap().seq, s.trace_recorded - 1);
}

#[test]
fn row_errors_are_ledgered_not_lost() {
    let mut pipeline = DiffPipelineConfig::new(2).observe().build();
    let obs = pipeline.observer().unwrap();
    let good = rle_systolic::rle::RleRow::from_pairs(64, &[(0, 9)]).unwrap();
    let bad = rle_systolic::rle::RleRow::new(32); // width mismatch
    pipeline.submit(good.clone(), bad);
    pipeline.submit(good.clone(), good.clone());
    let outcomes = pipeline.drain();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes.iter().filter(|o| o.result.is_err()).count(), 1);

    let s = obs.metrics_snapshot();
    assert_ledger_closed(&s);
    assert_eq!(s.rows_submitted, 2);
    assert_eq!(s.rows_completed, 1);
    assert_eq!(s.rows_errored, 1);
    assert_eq!(s.rows_kernel_errors, 1);
    assert_eq!(s.rows_diffed, 1, "the bad row never produced a diff");
    let events = obs.trace_snapshot();
    assert_eq!(
        count(&events, |k| matches!(k, TraceKind::RowError { .. })),
        1
    );
}

#[test]
fn gauges_never_go_negative_under_concurrent_sampling() {
    // The queue-depth gauge moves inside the same shard-lock critical
    // sections that mutate the sharded queues, so no interleaving of
    // pushes, pops and steals can ever expose a negative depth to a
    // concurrent scraper. Hammer several batches while a sampler thread
    // reads both gauges as fast as it can.
    let (a, b) = image_pair(512, 32, 0x6A06);
    let expected = xor_image(&a, &b).unwrap().0;
    let mut pipeline = DiffPipelineConfig::new(4).chunk_target(1).observe().build();
    let obs = pipeline.observer().unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let obs = Arc::clone(&obs);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut samples = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = obs.metrics_snapshot();
                assert!(s.queue_depth >= 0, "queue_depth went negative: {s:?}");
                assert!(s.in_flight >= 0, "in_flight went negative: {s:?}");
                samples += 1;
            }
            samples
        })
    };

    for _ in 0..6 {
        let (got, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, expected);
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let samples = sampler.join().expect("sampler found a negative gauge");
    assert!(samples > 0, "sampler must have observed the run");

    // Quiescent: both gauges return exactly to zero and the ledger closes.
    let s = obs.metrics_snapshot();
    assert_ledger_closed(&s);
}

// ---------------------------------------------------------------------------
// Satellite: the §5 Observation through the observed pipeline.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The paper's Observation, replayed through the *pipeline* rather
    /// than the bare array: canonical (fully-compressed) random rows on
    /// the systolic kernel halt within `k3 + 1` iterations, where `k3` is
    /// the raw output run count carried by each [`RowOutcome`]'s stats.
    /// (The bare-array version with 512 cases lives in
    /// `correctness_props.rs`; EXPERIMENTS.md §E9 records the measured
    /// rates.)
    #[test]
    fn observation_k3_plus_one_via_pipeline((a, b) in canonical_pair(800, 48)) {
        let mut pipeline = DiffPipelineConfig::new(1)
            .kernel(Kernel::Systolic)
            .build();
        pipeline.submit(a.clone(), b.clone());
        let outcome = pipeline.collect().expect("one row in flight");
        let (_, stats) = outcome.result.expect("systolic kernel succeeds");
        prop_assert!(
            stats.iterations <= stats.output_runs as u64 + 1,
            "counterexample to the Observation: {} iterations, k3 = {} (a = {:?}, b = {:?})",
            stats.iterations, stats.output_runs, a, b
        );
    }
}

/// Deterministic tally behind the EXPERIMENTS.md §E9 numbers: 1 000
/// seeded canonical pairs from the §5 generator, zero violations
/// tolerated. Prints the pass/fail tally so a `--nocapture` run shows the
/// measured rate being recorded.
#[test]
fn observation_tally_on_generated_workloads() {
    let params = GenParams::for_density(2_000, 0.25);
    let mut violations = 0u64;
    let mut at_bound = 0u64;
    let total = 1_000u64;
    let mut pipeline = DiffPipelineConfig::new(2).kernel(Kernel::Systolic).build();
    for seed in 0..total {
        let mut gen = RowGenerator::new(params, 0x0B5E + seed);
        let a = gen.next_image(1);
        let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.08), seed);
        pipeline.submit(a.rows()[0].clone(), b.rows()[0].clone());
        let outcome = pipeline.collect().expect("one row in flight");
        let (_, stats) = outcome.result.expect("systolic kernel succeeds");
        let bound = stats.output_runs as u64 + 1;
        if stats.iterations > bound {
            violations += 1;
        } else if stats.iterations == bound {
            at_bound += 1;
        }
    }
    println!(
        "observation tally: {total} pairs, {violations} violations, \
         {at_bound} exactly at the k3+1 bound"
    );
    assert_eq!(violations, 0, "counterexample to the paper's Observation");
}

// ---------------------------------------------------------------------------
// Satellite: PipelineStats kernel accounting across kernels × threads ×
// uneven heights.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `rows_fast_path + rows_rle_kernel + rows_packed_kernel +
    /// rows_systolic_kernel == rows` for every batch, and the observed
    /// metrics agree with the per-batch stats.
    #[test]
    fn pipeline_stats_kernel_counters_partition_rows(
        kernel_ix in 0usize..4,
        threads in 1usize..=4,
        height in 1usize..=13,
        seed in 0u64..1024,
    ) {
        let kernel = [Kernel::Auto, Kernel::Rle, Kernel::Packed, Kernel::Systolic][kernel_ix];
        let (a, b) = image_pair(320, height, seed);
        let mut pipeline = DiffPipelineConfig::new(threads)
            .kernel(kernel)
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        prop_assert_eq!(&got, &xor_image(&a, &b).unwrap().0);
        prop_assert_eq!(stats.rows, height);
        prop_assert_eq!(
            stats.rows_fast_path
                + stats.rows_rle_kernel
                + stats.rows_packed_kernel
                + stats.rows_systolic_kernel,
            stats.rows,
            "kernel counters must partition the batch ({:?}, {} threads)",
            kernel,
            threads
        );
        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        prop_assert_eq!(s.rows_completed, height as u64);
    }
}

// ---------------------------------------------------------------------------
// Satellite: deterministic multi-submitter stress drill.
// ---------------------------------------------------------------------------

#[test]
fn shared_pipeline_stress_from_four_submitters() {
    let pipeline = Arc::new(Mutex::new(DiffPipelineConfig::new(3).observe().build()));
    let obs = pipeline.lock().unwrap().observer().unwrap();
    let mut expected_rows = 0u64;

    std::thread::scope(|scope| {
        for submitter in 0u64..4 {
            let pipeline = Arc::clone(&pipeline);
            scope.spawn(move || {
                for round in 0u64..3 {
                    let seed = 0x57E5 + submitter * 100 + round;
                    let (a, b) = image_pair(384, 6, seed);
                    let expected = xor_image(&a, &b).unwrap().0;
                    let mut p = pipeline.lock().unwrap();
                    match (submitter + round) % 3 {
                        0 => {
                            let (got, stats) = p.diff_images(&a, &b).unwrap();
                            assert_eq!(got, expected, "submitter {submitter} round {round}");
                            assert_eq!(stats.rows, 6);
                        }
                        1 => {
                            let (aa, bb) = (Arc::new(a), Arc::new(b));
                            let (got, _) = p.diff_images_shared(&aa, &bb).unwrap();
                            assert_eq!(got, expected, "submitter {submitter} round {round}");
                        }
                        _ => {
                            let tickets: Vec<_> = a
                                .rows()
                                .iter()
                                .zip(b.rows())
                                .map(|(ra, rb)| p.submit(ra.clone(), rb.clone()))
                                .collect();
                            let mut got = vec![None; tickets.len()];
                            while let Some(outcome) = p.collect() {
                                let slot = tickets
                                    .iter()
                                    .position(|t| *t == outcome.ticket)
                                    .expect("own ticket");
                                got[slot] = Some(outcome.result.unwrap().0);
                            }
                            for (slot, row) in got.into_iter().enumerate() {
                                assert_eq!(
                                    row.unwrap(),
                                    expected.rows()[slot],
                                    "submitter {submitter} round {round} row {slot}"
                                );
                            }
                        }
                    }
                }
            });
            expected_rows += 3 * 6;
        }
    });

    // Clean drain: nothing leaked, the ledger closes over all 12 calls.
    let mut p = pipeline.lock().unwrap();
    assert_eq!(p.in_flight(), 0, "no leaked checkouts");
    assert!(p.drain().is_empty());
    let s = obs.metrics_snapshot();
    assert_ledger_closed(&s);
    assert_eq!(s.rows_submitted, expected_rows);
    assert_eq!(s.rows_completed, expected_rows);
    assert_eq!(s.rows_errored, 0);
}

// ---------------------------------------------------------------------------
// Satellite: the job-level ledger on the shared multi-image executor.
// Per-job PipelineStats identities must close for every job, and their
// sums must reconcile with the one shared metrics registry — exact
// attribution under arbitrary interleaving, not merely eventual totals.
// ---------------------------------------------------------------------------

#[test]
fn executor_job_ledger_closes_per_job_and_in_aggregate() {
    let executor: Arc<DiffExecutor> = Arc::new(
        DiffExecutorConfig {
            threads: 3,
            observe: Some(ObsConfig::default()),
            ..DiffExecutorConfig::default()
        }
        .build(),
    );
    let obs = executor.observer().expect("executor built observed");

    // 4 submitters × 3 jobs each, uneven heights so the chunk plans and
    // interleavings differ between jobs sharing the shards.
    let per_job: Mutex<Vec<PipelineStats>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for submitter in 0u64..4 {
            let executor = Arc::clone(&executor);
            let per_job = &per_job;
            scope.spawn(move || {
                for round in 0u64..3 {
                    let seed = 0x10B5 + submitter * 64 + round;
                    let height = 5 + 7 * submitter as usize + round as usize;
                    let (a, b) = image_pair(448, height, seed);
                    let expected = xor_image(&a, &b).unwrap().0;
                    let (a, b) = (Arc::new(a), Arc::new(b));
                    let job = executor.diff_pair(&a, &b, None).unwrap();
                    assert_eq!(
                        job.image, expected,
                        "submitter {submitter} round {round}: bit-identity"
                    );
                    // Per-job identities: the stats describe exactly this
                    // job's rows, no more, no less.
                    assert_eq!(job.stats.rows, height);
                    assert_eq!(
                        job.stats.rows_fast_path
                            + job.stats.rows_rle_kernel
                            + job.stats.rows_packed_kernel
                            + job.stats.rows_systolic_kernel,
                        height,
                        "submitter {submitter} round {round}: per-job kernel partition"
                    );
                    assert_eq!(
                        job.tickets.1 - job.tickets.0,
                        height as u64,
                        "ticket range covers exactly the job's rows"
                    );
                    per_job.lock().unwrap().push(job.stats);
                }
            });
        }
    });

    let per_job = per_job.into_inner().unwrap();
    assert_eq!(per_job.len(), 12);
    let sum = |f: fn(&PipelineStats) -> u64| per_job.iter().map(f).sum::<u64>();
    let total_rows = sum(|s| s.rows as u64);

    let s = obs.metrics_snapshot();
    assert_ledger_closed(&s);
    assert_eq!(s.jobs_submitted, 12);
    assert_eq!(s.jobs_completed, 12);
    assert_eq!(s.jobs_abandoned, 0);
    assert_eq!(s.rows_submitted, total_rows);
    assert_eq!(s.rows_completed, total_rows);
    // Summed per-job kernel counters equal the registry's global
    // partition: every worker-side increment was attributed to exactly
    // one job.
    assert_eq!(s.rows_fast_path, sum(|j| j.rows_fast_path as u64));
    assert_eq!(s.rows_rle_kernel, sum(|j| j.rows_rle_kernel as u64));
    assert_eq!(s.rows_packed_kernel, sum(|j| j.rows_packed_kernel as u64));
    assert_eq!(
        s.rows_systolic_kernel,
        sum(|j| j.rows_systolic_kernel as u64)
    );
    // Same for the supervision and scheduler counters.
    assert_eq!(s.retries, sum(|j| j.retries));
    assert_eq!(s.respawns, sum(|j| j.respawns));
    assert_eq!(s.timeouts, sum(|j| j.timeouts));
    assert_eq!(s.chunks_stolen, sum(|j| j.chunks_stolen));
    assert_eq!(s.chunks_dispatched, sum(|j| j.chunks as u64));
    assert_eq!(s.chunks_completed, s.chunks_dispatched);

    // Trace: one JobSubmit and one JobDone per job, causally ordered and
    // carrying the same row count.
    let events = obs.trace_snapshot();
    let submits: Vec<(u64, u64, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::JobSubmit { job, rows } => Some((job, rows, e.seq)),
            _ => None,
        })
        .collect();
    assert_eq!(submits.len(), 12);
    for (job, rows, submit_seq) in submits {
        let done = events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::JobDone { job: j, .. } if j == job))
            .unwrap_or_else(|| panic!("job {job}: no JobDone event"));
        let TraceKind::JobDone {
            rows: done_rows, ..
        } = done.kind
        else {
            unreachable!("matched above");
        };
        assert_eq!(done_rows, rows, "job {job}: JobDone row count");
        assert!(submit_seq < done.seq, "job {job}: submit precedes done");
    }

    // Exposition carries the job ledger.
    let prom = s.to_prometheus();
    assert!(
        prom.contains("diffpipeline_jobs_submitted_total 12"),
        "{prom}"
    );
    assert!(
        prom.contains("diffpipeline_jobs_completed_total 12"),
        "{prom}"
    );
    assert!(s.to_json().contains("\"jobs_completed\": 12"));
}

// ---------------------------------------------------------------------------
// Fault-injected audits: trace and metrics reconcile with
// SupervisionCounters under panics, deaths and stalls.
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use rle_systolic::systolic_core::FaultPlan;
    use std::time::Duration;

    /// Silence the default panic hook for injected panics (same helper as
    /// `pipeline_faults.rs`; real panics keep full reporting).
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected fault"))
                    || info
                        .payload()
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("injected fault"));
                if !injected {
                    default_hook(info);
                }
            }));
        });
    }

    #[test]
    fn panicked_chunk_ledger_closes_and_retry_is_traced() {
        quiet_injected_panics();
        let (a, b) = image_pair(512, 16, 0xFA11);
        let mut pipeline = DiffPipelineConfig::new(3)
            .fault_plan(FaultPlan::new().panic_on_row(5))
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_eq!(stats.retries, 1);

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        let counters = pipeline.supervision_counters();
        assert_eq!(s.retries, counters.retries);
        assert_eq!(s.respawns, counters.respawns);
        assert_eq!(s.timeouts, counters.timeouts);
        // The crashed chunk's partial work is visible: rows diffed before
        // the panic were discarded and re-diffed.
        assert_eq!(s.rows_completed, 16);
        assert_eq!(s.rows_diffed, 16 + s.rows_discarded);
        let events = obs.trace_snapshot();
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Retry { .. })),
            counters.retries,
            "every supervision retry appears in the trace"
        );
        // The retried chunk was checked out once more than the clean ones.
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Checkout { .. })),
            s.chunks_completed + counters.retries
        );
    }

    #[test]
    fn dead_worker_ledger_closes_and_respawn_is_traced() {
        quiet_injected_panics();
        let (a, b) = image_pair(512, 12, 0xDEAD);
        let mut pipeline = DiffPipelineConfig::new(2)
            .fault_plan(FaultPlan::new().die_on_row(3))
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_eq!(stats.respawns, 1);

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        let counters = pipeline.supervision_counters();
        assert_eq!(
            (s.retries, s.respawns),
            (counters.retries, counters.respawns)
        );
        let events = obs.trace_snapshot();
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Respawn { .. })),
            counters.respawns
        );
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Retry { .. })),
            counters.retries
        );
    }

    #[test]
    fn exhausted_retries_trace_the_failed_row() {
        quiet_injected_panics();
        let (a, b) = image_pair(512, 8, 0xFA12);
        let mut pipeline = DiffPipelineConfig::new(2)
            .retry_limit(1)
            .fault_plan(FaultPlan::new().panic_on_row_times(4, 10))
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        let err = pipeline.diff_images(&a, &b).unwrap_err();
        assert!(matches!(
            err,
            rle_systolic::systolic_core::SystolicError::RowFailed { row: 4, .. }
        ));
        assert_eq!(pipeline.in_flight(), 0, "failed batch fully drained");

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        assert_eq!(s.rows_errored, 1, "exactly the culprit row errored");
        assert_eq!(s.rows_completed + s.rows_errored, s.rows_submitted);
        let events = obs.trace_snapshot();
        let failed: Vec<u32> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::RowFailed { ticket, attempts } => {
                    assert_eq!(ticket, 4);
                    Some(attempts)
                }
                _ => None,
            })
            .collect();
        assert_eq!(failed, vec![2], "initial attempt + one retry");
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Retry { .. })),
            pipeline.supervision_counters().retries
        );
    }

    #[test]
    fn stall_timeout_is_counted_and_traced_consistently() {
        quiet_injected_panics();
        let (a, b) = image_pair(512, 1, 0x57A1);
        let mut pipeline = DiffPipelineConfig::new(1)
            .fault_plan(FaultPlan::new().stall_on_row(0, Duration::from_millis(300)))
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        pipeline.submit(a.rows()[0].clone(), b.rows()[0].clone());
        let err = pipeline
            .collect_timeout(Duration::from_millis(40))
            .unwrap_err();
        assert!(matches!(
            err,
            rle_systolic::systolic_core::SystolicError::DeadlineExceeded { .. }
        ));
        // The stalled row eventually lands; the pipeline goes quiescent.
        let outcome = pipeline.collect().expect("row still in flight");
        assert!(outcome.result.is_ok());

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        let counters = pipeline.supervision_counters();
        assert_eq!(counters.timeouts, 1);
        assert_eq!(s.timeouts, counters.timeouts);
        let events = obs.trace_snapshot();
        let timeouts: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::Timeout { in_flight } => Some(in_flight),
                _ => None,
            })
            .collect();
        assert_eq!(timeouts, vec![1], "one timeout with one row in flight");
    }

    #[test]
    fn abandoned_batch_surfaces_in_rows_abandoned_and_ledger_recloses() {
        quiet_injected_panics();
        let (a, b) = image_pair(512, 6, 0xABA0);
        let stall = Duration::from_millis(400);
        let mut pipeline = DiffPipelineConfig::new(2)
            .row_deadline(Duration::from_millis(40))
            .fault_plan(FaultPlan::new().stall_on_row(0, stall))
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        let err = pipeline.diff_images(&a, &b).unwrap_err();
        assert!(matches!(
            err,
            rle_systolic::systolic_core::SystolicError::DeadlineExceeded { .. }
        ));
        assert_eq!(pipeline.in_flight(), 0, "abandon leaves the pool idle");
        let wedged = pipeline.abandoned();
        assert!(wedged >= 1, "{pipeline:?}");

        // The write-off is visible without a debugger: the counter covers
        // the wedged remainder plus any queued rows dropped before a
        // worker ever ran them, and the submit ledger closes immediately
        // (not only after the stall heals).
        let s = obs.metrics_snapshot();
        assert!(s.rows_abandoned >= wedged as u64, "{s:?}");
        assert_eq!(
            s.rows_submitted,
            s.rows_completed + s.rows_errored + s.rows_abandoned
        );
        assert!(s
            .to_prometheus()
            .contains("diffpipeline_rows_abandoned_total"));
        assert!(s.to_json().contains("\"rows_abandoned\""));

        // Wait out the stall; the stale delivery is discarded at the
        // watermark and the abandoned level drains back to zero while the
        // counter stays monotonic.
        let healed_by = std::time::Instant::now() + stall * 10;
        while pipeline.abandoned() > 0 && std::time::Instant::now() < healed_by {
            pipeline.drain();
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(pipeline.abandoned(), 0, "healed pool drains the level");
        let healed = obs.metrics_snapshot();
        assert_eq!(healed.rows_abandoned, s.rows_abandoned);
        assert_ledger_closed(&healed);

        // And the pool still works: a clean batch reconciles on top.
        let (got, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);
        assert_ledger_closed(&obs.metrics_snapshot());
    }

    #[test]
    fn combined_fault_storm_keeps_every_identity() {
        quiet_injected_panics();
        let (a, b) = image_pair(640, 24, 0x5702);
        let plan = FaultPlan::new()
            .panic_on_row(2)
            .die_on_row(9)
            .poison_on_row(14)
            .panic_on_row(21);
        let mut pipeline = DiffPipelineConfig::new(4)
            .kernel(Kernel::Systolic)
            .fault_plan(plan)
            .observe()
            .build();
        let obs = pipeline.observer().unwrap();
        let (got, _) = pipeline.diff_images(&a, &b).unwrap();
        assert_eq!(got, xor_image(&a, &b).unwrap().0);

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        let counters = pipeline.supervision_counters();
        assert_eq!(s.retries, counters.retries);
        assert_eq!(s.respawns, counters.respawns);
        assert_eq!(s.rows_completed, 24);
        assert_eq!(
            s.rows_diffed,
            24 + s.rows_discarded,
            "all-or-nothing chunk retries close the diff ledger exactly"
        );
        let events = obs.trace_snapshot();
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Retry { .. })),
            counters.retries
        );
        assert_eq!(
            count(&events, |k| matches!(k, TraceKind::Respawn { .. })),
            counters.respawns
        );
        // Only the systolic kernel ran.
        assert_eq!(s.rows_systolic_kernel, s.rows_diffed);
    }

    /// Two jobs on one shared executor, a panic planned inside the second
    /// job's ticket range: the retry lands on the faulted job's stats
    /// only, the shared registry agrees with the per-job sums, and the
    /// job ledger closes.
    #[test]
    fn job_ledger_attributes_faults_to_the_owning_job() {
        quiet_injected_panics();
        let executor = DiffExecutorConfig {
            threads: 2,
            // Job 1 takes tickets 0..8, job 2 takes 8..16; row 11 is
            // inside job 2.
            fault_plan: Some(FaultPlan::new().panic_on_row(11)),
            observe: Some(ObsConfig::default()),
            ..DiffExecutorConfig::default()
        }
        .build();
        let obs = executor.observer().unwrap();

        let (a1, b1) = image_pair(512, 8, 0x0A11);
        let (a2, b2) = image_pair(512, 8, 0x0A22);
        let clean = executor
            .diff_pair(&Arc::new(a1.clone()), &Arc::new(b1.clone()), None)
            .unwrap();
        let faulted = executor
            .diff_pair(&Arc::new(a2.clone()), &Arc::new(b2.clone()), None)
            .unwrap();
        assert_eq!(clean.image, xor_image(&a1, &b1).unwrap().0);
        assert_eq!(faulted.image, xor_image(&a2, &b2).unwrap().0);
        assert_eq!(clean.tickets, (0, 8));
        assert_eq!(faulted.tickets, (8, 16));

        assert_eq!(clean.stats.retries, 0, "the clean job saw no fault");
        assert_eq!(faulted.stats.retries, 1, "the panic charged its owner");
        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        assert_eq!(s.retries, clean.stats.retries + faulted.stats.retries);
        assert_eq!(
            (s.jobs_submitted, s.jobs_completed, s.jobs_abandoned),
            (2, 2, 0)
        );
        // The crashed chunk's discarded rows belong to the ledger too.
        assert_eq!(s.rows_diffed, 16 + s.rows_discarded);
    }

    /// An abandoned job books `jobs_abandoned` exactly once, a neighbour
    /// job sharing the executor completes bit-identically meanwhile, and
    /// once the stalled worker heals the full ledger re-closes.
    #[test]
    fn abandoned_job_ledger_closes_and_neighbour_is_unaffected() {
        quiet_injected_panics();
        let stall = Duration::from_millis(400);
        let executor = DiffExecutorConfig {
            threads: 2,
            fault_plan: Some(FaultPlan::new().stall_on_row(0, stall)),
            observe: Some(ObsConfig::default()),
            ..DiffExecutorConfig::default()
        }
        .build();
        let obs = executor.observer().unwrap();

        let (a1, b1) = image_pair(512, 6, 0xABA1);
        let err = executor
            .diff_pair(
                &Arc::new(a1.clone()),
                &Arc::new(b1.clone()),
                Some(Duration::from_millis(40)),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            rle_systolic::systolic_core::SystolicError::DeadlineExceeded { .. }
        ));

        // The neighbour rides the surviving worker while the first job's
        // stalled chunk is still wedged.
        let (a2, b2) = image_pair(512, 6, 0xABA2);
        let job = executor
            .diff_pair(&Arc::new(a2.clone()), &Arc::new(b2.clone()), None)
            .unwrap();
        assert_eq!(job.image, xor_image(&a2, &b2).unwrap().0);

        // Wait out the stall: the stale delivery is discarded on arrival
        // and the abandoned level drains back to zero.
        let healed_by = std::time::Instant::now() + stall * 10;
        while executor.abandoned() > 0 && std::time::Instant::now() < healed_by {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(executor.abandoned(), 0, "healed pool drains the level");
        assert_eq!(executor.in_flight(), 0);

        let s = obs.metrics_snapshot();
        assert_ledger_closed(&s);
        assert_eq!(
            (s.jobs_submitted, s.jobs_completed, s.jobs_abandoned),
            (2, 1, 1)
        );
        assert!(s.rows_abandoned >= 1, "{s:?}");
        assert!(s
            .to_prometheus()
            .contains("diffpipeline_jobs_abandoned_total 1"));
    }
}
