//! Cross-crate property tests of the paper's theorems: every implementation
//! of the image difference must agree with the dense ground truth, the
//! systolic machine must respect its proven bounds, and the invariants of
//! the correctness proof must hold at every iteration.

mod common;

use common::{canonical_pair, dense_xor, row_pair};
use proptest::prelude::*;
use rle_systolic::rle::{metrics, ops};
use rle_systolic::systolic_core::bus::{systolic_xor_bus, systolic_xor_mesh};
use rle_systolic::systolic_core::engine::parallel::systolic_xor_parallel;
use rle_systolic::systolic_core::invariants::{check_all, machine_xor_signature};
use rle_systolic::systolic_core::{systolic_xor, SystolicArray};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 3 for every implementation: sequential merge, boundary
    /// sweep, pure systolic, broadcast bus, and mesh all equal the dense
    /// ground truth.
    #[test]
    fn all_implementations_agree_with_dense_reference((a, b) in row_pair(600, 40)) {
        let truth = dense_xor(&a, &b);
        prop_assert_eq!(&ops::xor(&a, &b), &truth, "sequential merge");
        prop_assert_eq!(&ops::combine(&a, &b, |x, y| x ^ y), &truth, "boundary sweep");
        let (sys, _) = systolic_xor(&a, &b).unwrap();
        prop_assert_eq!(&sys, &truth, "systolic");
        let (bus, _) = systolic_xor_bus(&a, &b).unwrap();
        prop_assert_eq!(&bus, &truth, "broadcast bus");
        let (mesh, _) = systolic_xor_mesh(&a, &b).unwrap();
        prop_assert_eq!(&mesh, &truth, "mesh");
    }

    /// Theorem 1: the systolic machine terminates within k1 + k2
    /// iterations (`run` errors out otherwise, so reaching the assert at
    /// all means the bound held; we re-check explicitly).
    #[test]
    fn theorem1_iteration_bound((a, b) in row_pair(600, 40)) {
        let (_, stats) = systolic_xor(&a, &b).unwrap();
        prop_assert!(stats.within_theorem1(),
            "took {} iterations for k1={} k2={}", stats.iterations, stats.k1, stats.k2);
    }

    /// Theorem 2 + Corollaries 1.1/1.2 + the Theorem-3 conservation
    /// quantity, checked after *every* iteration of a stepped run.
    #[test]
    fn per_iteration_invariants((a, b) in row_pair(400, 24)) {
        let expected = ops::xor(&a, &b);
        let mut machine = SystolicArray::load(&a, &b).unwrap();
        machine.enable_invariant_checks(false); // we check manually below
        prop_assert_eq!(machine_xor_signature(&machine), expected.clone());
        let mut done = machine.is_done();
        while !done {
            done = machine.step().unwrap();
            check_all(&machine).map_err(TestCaseError::fail)?;
            prop_assert_eq!(machine_xor_signature(&machine), expected.clone());
        }
    }

    /// The parallel engine is bit-equivalent to the sequential engine.
    /// (Small arrays fall back internally; force chunking with many runs.)
    #[test]
    fn parallel_engine_equivalence((a, b) in row_pair(30_000, 600), threads in 2usize..5) {
        let (seq, seq_stats) = systolic_xor(&a, &b).unwrap();
        let (par, par_stats) = systolic_xor_parallel(&a, &b, threads).unwrap();
        prop_assert_eq!(par, seq);
        prop_assert_eq!(par_stats.iterations, seq_stats.iterations);
        prop_assert_eq!(par_stats.output_runs, seq_stats.output_runs);
    }

    /// XOR algebra in the compressed domain: commutativity, involution,
    /// identity — computed entirely via the systolic machine.
    #[test]
    fn systolic_xor_algebra((a, b) in row_pair(500, 30)) {
        let (ab, _) = systolic_xor(&a, &b).unwrap();
        let (ba, _) = systolic_xor(&b, &a).unwrap();
        prop_assert_eq!(&ab, &ba, "commutativity");
        // (a ^ b) ^ b == a (canonicalized)
        let (back, _) = systolic_xor(&ab, &b).unwrap();
        prop_assert_eq!(&back, &a.canonicalized(), "involution");
        let empty = rle_systolic::rle::RleRow::new(a.width());
        let (same, _) = systolic_xor(&a, &empty).unwrap();
        prop_assert_eq!(&same, &a.canonicalized(), "identity");
    }

    /// The similarity metrics agree with the machine: differing pixels
    /// equals the Hamming distance, and the raw output run count matches
    /// the metric used for Figure 5's upper-bound series.
    #[test]
    fn metrics_match_machine((a, b) in row_pair(500, 30)) {
        let sim = metrics::row_similarity(&a, &b);
        let (diff, stats) = systolic_xor(&a, &b).unwrap();
        prop_assert_eq!(sim.differing_pixels, diff.ones());
        prop_assert_eq!(sim.runs_in_xor, diff.run_count());
        prop_assert_eq!(sim.runs_in_raw_xor, stats.output_runs,
            "raw systolic output must match the sequential raw output size");
    }
}

proptest! {
    // The Observation is unproven in the paper, so give it a heavier hammer.
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// §5's Observation: with fully-compressed (canonical) inputs the
    /// machine stops within k3 + 1 iterations, where k3 is the number of
    /// runs in its own (raw) output. The paper could not prove this; a
    /// failure here would be a counterexample worth reporting.
    #[test]
    fn observation_k3_plus_one((a, b) in canonical_pair(800, 48)) {
        let (_, stats) = systolic_xor(&a, &b).unwrap();
        prop_assert!(
            stats.iterations <= stats.output_runs as u64 + 1,
            "counterexample to the paper's Observation: {} iterations, k3 = {} (a = {:?}, b = {:?})",
            stats.iterations, stats.output_runs, a, b
        );
    }
}
