//! The signature layer's three safety contracts, end to end:
//!
//! 1. **Canonical-view hashing** — any valid encoding of the same pixel
//!    content (canonical or not) hashes identically, so the prefilter can
//!    compare rows that arrived through different code paths.
//! 2. **Skips never lie** — across a density sweep, every row the
//!    prefilter skips agrees with the reference `rle::ops::xor` (and the
//!    paranoid mode's sampled cross-checks confirm rather than catch).
//! 3. **Collisions are survivable** — with a fault-injected signature
//!    collision, paranoid mode substitutes the reference diff and the
//!    batch output stays exact (fault-injection builds only).

mod common;

use common::rle_row;
use proptest::prelude::*;
use rle_systolic::rle::{ops, sig, RleImage, RleRow};
use rle_systolic::systolic_core::DiffPipelineConfig;
use rle_systolic::workload::{FrameSequence, GenParams, SequenceParams};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Signatures are a function of pixel content, not encoding: a row and
    /// its canonical form hash equal, and re-encoding through dense bits
    /// changes nothing.
    #[test]
    fn non_canonical_encodings_hash_identically(row in rle_row(300, 24, true)) {
        let canonical = row.canonicalized();
        prop_assert_eq!(row.signature(), canonical.signature());
        let rebuilt = RleRow::from_bits(&row.to_bits());
        prop_assert_eq!(row.signature(), rebuilt.signature());
        prop_assert_ne!(row.signature(), 0, "0 is the cache sentinel");
    }

    /// Different content (at the same width) almost surely hashes
    /// different; equal signatures on a 192-case run of structured rows
    /// would mean the mixer is broken, not unlucky.
    #[test]
    fn content_changes_change_the_signature(row in rle_row(300, 24, true)) {
        let mut bits = row.to_bits();
        bits[0] = !bits[0];
        let flipped = RleRow::from_bits(&bits);
        prop_assert_ne!(row.signature(), flipped.signature());
    }
}

/// The density-sweep guard: from sparse to half-on images, with the
/// prefilter and paranoid verification enabled, every batch's output must
/// equal the reference XOR — no skip may disagree — and the ledger must
/// partition (`rows == skipped + collisions + kernel rows`).
#[test]
fn no_skip_disagrees_with_the_reference_across_densities() {
    for (i, density) in [0.01, 0.05, 0.10, 0.25, 0.50].iter().enumerate() {
        let params = SequenceParams {
            gen: GenParams::for_density(2_048, *density),
            height: 64,
            churn: 0.15,
        };
        let mut seq = FrameSequence::new(params, 0xD5 + i as u64);
        let frames: Vec<Arc<RleImage>> = seq.take_frames(4).into_iter().map(Arc::new).collect();
        let mut pipeline = DiffPipelineConfig::new(2)
            .signature_prefilter()
            .verify_signatures()
            .build();
        for pair in frames.windows(2) {
            let (got, stats) = pipeline
                .diff_images_shared(&pair[0], &pair[1])
                .expect("diff");
            for (y, (ra, rb)) in pair[0].rows().iter().zip(pair[1].rows()).enumerate() {
                assert_eq!(
                    got.rows()[y],
                    ops::xor(ra, rb),
                    "density {density}, row {y} disagrees with the reference"
                );
            }
            assert!(
                stats.rows_sig_skipped > 0,
                "density {density}: 85% unchanged rows must produce skips"
            );
            assert_eq!(
                stats.sig_collisions, 0,
                "real signatures do not collide here"
            );
            assert_eq!(
                stats.rows,
                stats.rows_sig_skipped
                    + stats.sig_collisions
                    + stats.rows_fast_path
                    + stats.rows_rle_kernel
                    + stats.rows_packed_kernel
                    + stats.rows_systolic_kernel,
                "density {density}: the row ledger must partition"
            );
            assert!(stats.sig_verified > 0, "paranoid sampling must engage");
        }
    }
}

/// Image-level signatures see content and geometry.
#[test]
fn image_signature_tracks_rows_and_dimensions() {
    let a = RleImage::from_rows(
        32,
        vec![
            RleRow::from_pairs(32, &[(0, 4)]).unwrap(),
            RleRow::from_pairs(32, &[(8, 2)]).unwrap(),
        ],
    )
    .unwrap();
    let mut b = a.clone();
    assert_eq!(sig::image_signature(&a), sig::image_signature(&b));
    assert_eq!(a.signature(), sig::image_signature(&a));
    b.set_row(1, RleRow::from_pairs(32, &[(9, 2)]).unwrap())
        .unwrap();
    assert_ne!(a.signature(), b.signature());
    let taller = RleImage::new(32, 3);
    let wider = RleImage::new(33, 3);
    assert_ne!(taller.signature(), wider.signature());
}

/// The false-skip drill: force a synthetic signature collision on an
/// adversarially similar row pair (same width, overlapping runs, one
/// pixel of true difference — the kind of pair a weak hash would actually
/// confuse) and prove (a) an unchecked prefilter emits a wrong row — the
/// hazard is real — and (b) paranoid mode's sampled cross-check catches
/// it, substitutes the reference diff, and accounts for it as
/// `sig_collisions`. The forced collision sits at skip ordinal 0 because
/// verification samples every `SIG_VERIFY_SAMPLE`-th skip starting there.
#[cfg(feature = "fault-injection")]
#[test]
fn injected_collision_is_caught_only_by_paranoid_mode() {
    let width = 1_024;
    let a = Arc::new(
        RleImage::from_rows(
            width,
            (0..8)
                .map(|y| RleRow::from_pairs(width, &[(y * 10, 5)]).unwrap())
                .collect(),
        )
        .unwrap(),
    );
    let mut rows = a.rows().to_vec();
    // Nearly identical to a's row 0 ((0,5)): shifted by one pixel.
    rows[0] = RleRow::from_pairs(width, &[(1, 5)]).unwrap();
    let b = Arc::new(RleImage::from_rows(width, rows).unwrap());
    let reference = {
        let rows = a
            .rows()
            .iter()
            .zip(b.rows())
            .map(|(ra, rb)| ops::xor(ra, rb))
            .collect();
        RleImage::from_rows(width, rows).unwrap()
    };

    // Unchecked: the forced collision on row 0 silently yields an empty
    // diff row — this is exactly the failure paranoid mode exists for.
    let mut unchecked = DiffPipelineConfig::new(1)
        .signature_prefilter()
        .fault_sig_collisions(vec![0])
        .build();
    let (wrong, _) = unchecked.diff_images_shared(&a, &b).unwrap();
    assert!(
        wrong.rows()[0].is_empty(),
        "the drill must produce a false skip"
    );
    assert_ne!(wrong, reference);

    // Paranoid: same forced collision, exact output, accounted collision.
    let mut paranoid = DiffPipelineConfig::new(1)
        .signature_prefilter()
        .verify_signatures()
        .fault_sig_collisions(vec![0])
        .build();
    let (got, stats) = paranoid.diff_images_shared(&a, &b).unwrap();
    assert_eq!(got, reference);
    assert_eq!(stats.sig_collisions, 1);
    assert_eq!(stats.rows_sig_skipped, 7);
}
