//! Adversarial-input property suite for `rle::serialize`: the decoders
//! face document-pipeline reality (truncated transfers, bit rot, hostile
//! headers) and must *never* panic or allocate beyond input-proportional
//! bounds — every malformed stream is a structured [`DecodeError`].
//!
//! Strategy coverage: exact round-trips on valid bytes, every truncation
//! point, single-bit flips, random garbage, trailing extensions, and
//! crafted count/height headers.

mod common;

use common::rle_row;
use proptest::prelude::*;
use rle_systolic::rle::serialize::{
    self, decode_image, decode_row, encode_image, encode_row, DecodeError, ImageReader,
};
use rle_systolic::rle::RleImage;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Valid bytes still round-trip exactly (the hardening must not reject
    /// anything the encoder produces).
    #[test]
    fn row_round_trip_survives_hardening(row in rle_row(5_000, 40, true)) {
        let bytes = encode_row(&row);
        prop_assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    /// Image round-trip, batch and streaming decoders agreeing.
    #[test]
    fn image_round_trip_survives_hardening(
        rows in prop::collection::vec(rle_row(900, 24, true), 1..8),
    ) {
        let img = RleImage::from_rows(900, rows).unwrap();
        let bytes = encode_image(&img);
        prop_assert_eq!(decode_image(&bytes).unwrap(), img.clone());
        let mut reader = ImageReader::new(&bytes[..]).unwrap();
        let mut streamed = Vec::new();
        while let Some(next) = reader.next_row() {
            streamed.push(next.unwrap());
        }
        prop_assert_eq!(RleImage::from_rows(900, streamed).unwrap(), img);
    }

    /// Every truncation of a valid row stream errors without panicking.
    #[test]
    fn truncated_rows_never_panic(row in rle_row(2_000, 24, true)) {
        let bytes = encode_row(&row);
        for cut in 0..bytes.len() {
            prop_assert!(decode_row(&bytes[..cut]).is_err(), "cut at {}", cut);
        }
    }

    /// Every truncation of a valid image stream errors (batch and
    /// streaming) without panicking.
    #[test]
    fn truncated_images_never_panic(
        rows in prop::collection::vec(rle_row(300, 10, true), 1..5),
    ) {
        let img = RleImage::from_rows(300, rows).unwrap();
        let bytes = encode_image(&img);
        for cut in 0..bytes.len() {
            prop_assert!(decode_image(&bytes[..cut]).is_err(), "cut at {}", cut);
            match ImageReader::new(&bytes[..cut]) {
                Err(_) => {}
                Ok(mut reader) => {
                    // Draining a truncated stream must end in an error,
                    // never a panic (it may yield valid prefix rows first).
                    let mut failed = false;
                    while let Some(next) = reader.next_row() {
                        if next.is_err() {
                            failed = true;
                            break;
                        }
                    }
                    prop_assert!(
                        failed || reader.rows_remaining() == 0,
                        "cut at {} decoded cleanly",
                        cut
                    );
                }
            }
        }
    }

    /// A single flipped bit anywhere decodes to Ok (a different valid row)
    /// or a structured error — never a panic, never a huge allocation.
    #[test]
    fn bit_flips_never_panic(
        row in rle_row(2_000, 24, true),
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = encode_row(&row);
        let idx = usize::from(flip_byte) % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = decode_row(&bytes); // Ok or Err both fine; no panic.
    }

    /// Same for whole images, batch and streaming.
    #[test]
    fn image_bit_flips_never_panic(
        rows in prop::collection::vec(rle_row(300, 10, true), 1..5),
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let img = RleImage::from_rows(300, rows).unwrap();
        let mut bytes = encode_image(&img);
        let idx = usize::from(flip_byte) % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = decode_image(&bytes);
        if let Ok(mut reader) = ImageReader::new(&bytes[..]) {
            while let Some(next) = reader.next_row() {
                if next.is_err() {
                    break;
                }
            }
        }
    }

    /// Pure garbage never panics either decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_row(&bytes);
        let _ = decode_image(&bytes);
        if let Ok(mut reader) = ImageReader::new(&bytes[..]) {
            while let Some(next) = reader.next_row() {
                if next.is_err() {
                    break;
                }
            }
        }
    }

    /// Garbage wearing a valid magic number still can't panic or force a
    /// disproportionate allocation.
    #[test]
    fn garbage_with_magic_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut row_bytes = b"RLR1".to_vec();
        row_bytes.extend_from_slice(&bytes);
        let _ = decode_row(&row_bytes);
        let mut img_bytes = b"RLI1".to_vec();
        img_bytes.extend_from_slice(&bytes);
        let _ = decode_image(&img_bytes);
    }

    /// Trailing extension bytes after a valid row are ignored (the row
    /// format is length-delimited by its own header), and an extended image
    /// decodes its declared height then errors or stops cleanly.
    #[test]
    fn extended_streams_never_panic(
        row in rle_row(2_000, 24, true),
        extra in prop::collection::vec(any::<u8>(), 1..50),
    ) {
        let mut bytes = encode_row(&row);
        bytes.extend_from_slice(&extra);
        prop_assert_eq!(decode_row(&bytes).unwrap(), row);
    }
}

#[test]
fn adversarial_count_headers_are_rejected_fast() {
    // Row: declares u32::MAX runs in a handful of bytes.
    let mut bytes = b"RLR1".to_vec();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]); // count = u32::MAX
    assert!(matches!(
        decode_row(&bytes),
        Err(DecodeError::ImplausibleCount { .. })
    ));

    // Image: 13 bytes claiming ~268M rows.
    let mut bytes = b"RLI1".to_vec();
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0x7F]);
    assert!(matches!(
        decode_image(&bytes),
        Err(DecodeError::ImplausibleCount { .. })
    ));

    // Streaming: a row claiming more runs than the image is wide.
    let mut bytes = b"RLI1".to_vec();
    bytes.extend_from_slice(&16u32.to_le_bytes());
    bytes.push(1); // height 1
    bytes.extend_from_slice(&[0xFF, 0x7F]); // count = 16383 runs in 16 px
    let mut reader = ImageReader::new(&bytes[..]).unwrap();
    assert!(matches!(
        reader.next_row().unwrap(),
        Err(DecodeError::ImplausibleCount { .. })
    ));
}

#[test]
fn dense_size_reporting_still_works() {
    // Smoke-check the module's unrelated entry point still behaves after
    // the hardening refactor.
    assert_eq!(serialize::dense_size_bytes(16, 4), 8);
}
