//! Differential testing across every workload family: rows drawn from all
//! four generators (the paper's random model, PCB layers, motion frames,
//! glyph rasterisations) are pushed through every differencing
//! implementation and both post-passes, which must all agree.
//!
//! The proptest suites cover synthetic run soups; this suite covers the
//! *structured* geometry real workloads produce (long traces, axis-aligned
//! rectangles, font strokes), which exercises different merge patterns.

use rle_systolic::prelude::*;
use rle_systolic::rle::ops;
use rle_systolic::systolic_core::coalesce::{bus_coalesce, CoalescePass};
use rle_systolic::systolic_core::engine::parallel::systolic_xor_parallel;
use rle_systolic::workload::glyphs;
use rle_systolic::workload::motion::{Scene, SceneParams};
use rle_systolic::workload::pcb::{inspection_pair, typical_defects, PcbParams};

/// Every row pair a workload family produces.
fn workload_row_pairs() -> Vec<(String, RleRow, RleRow)> {
    let mut pairs = Vec::new();

    // Paper rows at several similarity levels.
    for (i, fraction) in [0.0, 0.01, 0.2, 0.45].into_iter().enumerate() {
        let case = rle_systolic::workload::corpus::paper_rows(6_000, fraction, 900 + i as u64);
        pairs.push((format!("paper_{fraction}"), case.a, case.b));
    }

    // PCB reference vs scan, every row that differs plus a sample of rows
    // that do not.
    let (reference, scan) = inspection_pair(
        &PcbParams {
            width: 512,
            height: 96,
            ..Default::default()
        },
        &typical_defects(),
        5,
    );
    for (y, (ra, rb)) in reference.rows().iter().zip(scan.rows()).enumerate() {
        if ra != rb || y % 17 == 0 {
            pairs.push((format!("pcb_row_{y}"), ra.clone(), rb.clone()));
        }
    }

    // Motion frames: consecutive rows from two frames.
    let scene = Scene::new(
        SceneParams {
            width: 400,
            height: 40,
            objects: 3,
            max_speed: 2.0,
        },
        8,
    );
    let (f0, f1) = (scene.frame_rle(0), scene.frame_rle(1));
    for (y, (ra, rb)) in f0.rows().iter().zip(f1.rows()).enumerate().step_by(5) {
        pairs.push((format!("motion_row_{y}"), ra.clone(), rb.clone()));
    }

    // Glyph rows: same text rendered, one with noise.
    let clean = glyphs::render_rle("SYSTOLIC", 2);
    let noisy = rle_systolic::bitimg::convert::encode(&glyphs::perturb(
        &glyphs::render("SYSTOLIC", 2),
        25,
        77,
    ));
    for (y, (ra, rb)) in clean.rows().iter().zip(noisy.rows()).enumerate().step_by(3) {
        pairs.push((format!("glyph_row_{y}"), ra.clone(), rb.clone()));
    }

    // Degenerate extras.
    let w = 6_000;
    pairs.push(("both_empty".into(), RleRow::new(w), RleRow::new(w)));
    let full = RleRow::from_pairs(w, &[(0, w)]).unwrap();
    pairs.push(("empty_vs_full".into(), RleRow::new(w), full.clone()));
    pairs.push(("full_vs_full".into(), full.clone(), full));

    pairs
}

#[test]
fn all_algorithms_agree_on_all_workload_families() {
    let pairs = workload_row_pairs();
    assert!(
        pairs.len() > 30,
        "suite should be broad, got {}",
        pairs.len()
    );
    for (name, a, b) in &pairs {
        let truth = {
            let da = rle_systolic::bitimg::convert::decode_row(a);
            let db = rle_systolic::bitimg::convert::decode_row(b);
            rle_systolic::bitimg::convert::encode_row(&rle_systolic::bitimg::ops::xor_row(&da, &db))
        };
        assert_eq!(&ops::xor(a, b), &truth, "{name}: sequential");
        let (sys, stats) = systolic_xor(a, b).unwrap();
        assert_eq!(&sys, &truth, "{name}: systolic");
        assert!(stats.within_theorem1(), "{name}: Theorem 1");
        let (bus, _) = systolic_xor_bus(a, b).unwrap();
        assert_eq!(&bus, &truth, "{name}: bus");
        let (mesh, _) = systolic_xor_mesh(a, b).unwrap();
        assert_eq!(&mesh, &truth, "{name}: mesh");
        let (par, _) = systolic_xor_parallel(a, b, 3).unwrap();
        assert_eq!(&par, &truth, "{name}: parallel engine");
    }
}

#[test]
fn coalescing_passes_agree_on_all_workload_families() {
    for (name, a, b) in workload_row_pairs() {
        let mut machine = SystolicArray::load(&a, &b).unwrap();
        machine.run().unwrap();
        let chain: Vec<_> = machine.views().map(|c| c.small).collect();
        let mut pass = CoalescePass::from_array(&machine);
        pass.run().unwrap();
        let (bus_row, tx) = bus_coalesce(machine.width(), &chain);
        assert_eq!(pass.extract().unwrap(), bus_row, "{name}");
        assert_eq!(bus_row, machine.extract().unwrap(), "{name}: canonical");
        assert_eq!(
            tx as usize,
            machine.stats().output_runs,
            "{name}: one tx per run"
        );
    }
}

#[test]
fn observation_holds_on_all_workload_families() {
    for (name, a, b) in workload_row_pairs() {
        // All generators emit canonical rows — the Observation's premise.
        assert!(a.is_canonical() && b.is_canonical(), "{name}");
        let (_, stats) = systolic_xor(&a, &b).unwrap();
        assert!(
            stats.iterations <= stats.output_runs as u64 + 1,
            "{name}: counterexample to the Observation ({} iters, k3 {})",
            stats.iterations,
            stats.output_runs
        );
    }
}
