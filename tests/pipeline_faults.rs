//! Supervised-pipeline fault drills (requires `--features fault-injection`).
//!
//! Every failure mode the supervisor claims to tolerate is driven here by a
//! deterministic [`FaultPlan`] and checked against the one acceptance bar
//! that matters: after recovery, `diff_images` is **bit-identical** to the
//! sequential reference `xor_image`, and the intervention is visible in
//! [`PipelineStats`] / [`SupervisionCounters`].
//!
//! The second half re-runs the matrix at **job granularity** on the shared
//! multi-image executor: several jobs in flight on one shard set while a
//! worker panics, dies, or poisons a lock mid-stream. The bar gains a
//! clause — recovery must also be *isolated*: every collected ticket stays
//! inside its owning job's range, the intervention is charged to the job
//! that owned the crashed chunk, and bystander jobs finish untouched.
#![cfg(feature = "fault-injection")]

use rle_systolic::rle::{RleImage, RleRow};
use rle_systolic::systolic_core::image::xor_image;
use rle_systolic::systolic_core::{
    DiffExecutorConfig, DiffPipelineConfig, FaultPlan, JobHandle, Kernel, SupervisionCounters,
    SystolicError,
};
use rle_systolic::workload::{errors, ErrorModel, GenParams, RowGenerator};
use std::sync::Arc;
use std::time::Duration;

/// Silence the default panic hook for the *injected* panics these drills
/// fire on worker threads (they are caught by the supervisor, but the hook
/// would still spray backtraces over the test output). Real panics keep
/// the default reporting.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected fault"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn image_pair(height: usize) -> (RleImage, RleImage) {
    let params = GenParams::for_density(512, 0.3);
    let a = RowGenerator::new(params, 0xFA17).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.05), 0xFA18);
    (a, b)
}

#[test]
fn panicked_row_is_retried_and_result_is_bit_identical() {
    quiet_injected_panics();
    let (a, b) = image_pair(16);
    let (expected, _) = xor_image(&a, &b).unwrap();
    // Fresh pipeline: ticket n == row n. Row 5's first attempt panics.
    let mut pipeline = DiffPipelineConfig::new(3)
        .fault_plan(FaultPlan::new().panic_on_row(5))
        .build();
    let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(got, expected, "retried row must reproduce the exact diff");
    assert_eq!(stats.rows, 16);
    assert_eq!(stats.retries, 1, "the panic must cost exactly one retry");
    assert_eq!(stats.respawns, 0, "caught panics must not kill the worker");
    assert_eq!(stats.timeouts, 0);
    assert_eq!(
        pipeline.supervision_counters(),
        SupervisionCounters {
            retries: 1,
            ..Default::default()
        }
    );
    // The pool is healthy afterwards: a clean re-run needs no interventions.
    let (again, stats) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(again, expected);
    assert_eq!((stats.retries, stats.respawns), (0, 0));
}

#[test]
fn dead_worker_is_respawned_and_its_row_recovered() {
    quiet_injected_panics();
    let (a, b) = image_pair(12);
    let (expected, _) = xor_image(&a, &b).unwrap();
    let mut pipeline = DiffPipelineConfig::new(2)
        .fault_plan(FaultPlan::new().die_on_row(3))
        .build();
    let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(got, expected, "recovered row must reproduce the exact diff");
    assert_eq!(stats.respawns, 1, "the dead thread must be replaced");
    assert_eq!(stats.retries, 1, "its orphaned row must be re-enqueued");
    assert_eq!(pipeline.workers(), 2, "pool size is restored");
}

#[test]
fn dead_sole_worker_still_recovers() {
    quiet_injected_panics();
    let (a, b) = image_pair(6);
    let (expected, _) = xor_image(&a, &b).unwrap();
    // threads = 1: the only worker dies; nothing can make progress until
    // the supervisor respawns it.
    let mut pipeline = DiffPipelineConfig::new(1)
        .fault_plan(FaultPlan::new().die_on_row(2))
        .build();
    let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(got, expected);
    assert_eq!(stats.respawns, 1);
}

#[test]
fn row_that_keeps_crashing_surfaces_as_row_failed() {
    quiet_injected_panics();
    let (a, b) = image_pair(8);
    let mut pipeline = DiffPipelineConfig::new(2)
        .retry_limit(1)
        .fault_plan(FaultPlan::new().panic_on_row_times(4, 10))
        .build();
    let err = pipeline.diff_images(&a, &b).unwrap_err();
    match err {
        SystolicError::RowFailed {
            row,
            attempts,
            cause,
        } => {
            assert_eq!(row, 4);
            assert_eq!(attempts, 2, "initial attempt + retry_limit retries");
            assert!(cause.contains("injected fault"), "{cause}");
        }
        other => panic!("expected RowFailed, got {other:?}"),
    }
    // The failed batch was fully drained; the pool survives and recovers.
    assert_eq!(pipeline.in_flight(), 0);
    let (got, _) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(got, xor_image(&a, &b).unwrap().0);
}

#[test]
fn stalled_worker_trips_the_batch_deadline_instead_of_hanging() {
    quiet_injected_panics();
    let (a, b) = image_pair(8);
    let mut pipeline = DiffPipelineConfig::new(2)
        .row_deadline(Duration::from_millis(100))
        .shutdown_grace(Duration::from_millis(50))
        .fault_plan(FaultPlan::new().stall_on_row(1, Duration::from_secs(30)))
        .build();
    let start = std::time::Instant::now();
    let err = pipeline.diff_images(&a, &b).unwrap_err();
    assert!(
        matches!(err, SystolicError::DeadlineExceeded { .. }),
        "{err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline must fire long before the 30 s stall ends"
    );
    assert_eq!(pipeline.supervision_counters().timeouts, 1);
    // The aborted batch abandons its remaining rows behind the ticket
    // watermark: the pipeline is immediately idle again, and the wedged
    // worker's outstanding rows are reported honestly as abandoned.
    assert_eq!(pipeline.in_flight(), 0);
    assert!(pipeline.abandoned() >= 1, "{pipeline:?}");
    drop(pipeline); // must not deadlock: wedged worker is detached after grace
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drop must not wait out the stall"
    );
}

#[test]
fn abandoned_batch_heals_and_stale_deliveries_are_discarded() {
    quiet_injected_panics();
    let (a, b) = image_pair(8);
    let (expected, _) = xor_image(&a, &b).unwrap();
    // Worker 0 wedges for ~600 ms on the first batch; the 100 ms deadline
    // abandons that batch long before the stall ends.
    let mut pipeline = DiffPipelineConfig::new(2)
        .row_deadline(Duration::from_millis(100))
        .observe()
        .fault_plan(FaultPlan::new().stall_on_row(1, Duration::from_millis(600)))
        .build();
    let err = pipeline.diff_images(&a, &b).unwrap_err();
    assert!(
        matches!(err, SystolicError::DeadlineExceeded { .. }),
        "{err:?}"
    );
    assert_eq!(pipeline.in_flight(), 0, "abandon must leave the pool idle");
    let abandoned = pipeline.abandoned();
    assert!(abandoned >= 1, "{pipeline:?}");

    // A new batch on the surviving worker succeeds bit-identically while
    // its sibling is still wedged mid-stall.
    let (got, _) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(got, expected, "pool must keep working around the stall");

    // Once the stall ends, the wedged worker delivers its stale chunk. The
    // collector discards it at the watermark — it must never leak into a
    // later batch — and the abandoned count drains back to zero.
    std::thread::sleep(Duration::from_millis(700));
    let (again, _) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(again, expected, "stale rows must not pollute this batch");
    assert!(
        pipeline.drain().is_empty(),
        "nothing legitimately in flight"
    );
    assert_eq!(pipeline.abandoned(), 0, "stale deliveries all reaped");
    assert_eq!(pipeline.in_flight(), 0);

    // The metrics ledger reconciles across abandon + discard: every diffed
    // row was either handed to a caller or booked as discarded.
    let obs = pipeline.observer().expect("observability enabled");
    let snap = obs.metrics_snapshot();
    assert_eq!(
        snap.rows_diffed,
        snap.rows_completed + snap.rows_discarded,
        "{snap:?}"
    );
    assert_eq!((snap.queue_depth, snap.in_flight), (0, 0), "{snap:?}");
}

#[test]
fn streaming_collect_timeout_trips_on_a_stall_then_recovers() {
    quiet_injected_panics();
    let (a, b) = image_pair(1);
    let mut pipeline = DiffPipelineConfig::new(1)
        .fault_plan(FaultPlan::new().stall_on_row(0, Duration::from_millis(400)))
        .build();
    let ticket = pipeline.submit(a.rows()[0].clone(), b.rows()[0].clone());
    let err = pipeline
        .collect_timeout(Duration::from_millis(50))
        .unwrap_err();
    assert!(
        matches!(err, SystolicError::DeadlineExceeded { in_flight: 1, .. }),
        "{err:?}"
    );
    // The row was only delayed, not lost: a patient collect still gets it.
    let outcome = pipeline.collect().expect("row still in flight");
    assert_eq!(outcome.ticket, ticket);
    let (row, _) = outcome.result.unwrap();
    assert_eq!(
        row,
        xor_image(&a, &b).unwrap().0.rows()[0],
        "stalled row must still produce the exact diff"
    );
    assert_eq!(pipeline.in_flight(), 0);
}

#[test]
fn poisoned_lock_is_tolerated() {
    quiet_injected_panics();
    let (a, b) = image_pair(10);
    let (expected, _) = xor_image(&a, &b).unwrap();
    let mut pipeline = DiffPipelineConfig::new(2)
        .fault_plan(FaultPlan::new().poison_on_row(2))
        .build();
    let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(
        got, expected,
        "poisoned state lock must not corrupt results"
    );
    assert_eq!(stats.rows, 10);
    // Submissions and further batches keep working on the poisoned mutex.
    let (again, _) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(again, expected);
}

#[test]
fn combined_faults_in_one_batch_all_recover() {
    quiet_injected_panics();
    let (a, b) = image_pair(24);
    let (expected, _) = xor_image(&a, &b).unwrap();
    let plan = FaultPlan::new()
        .panic_on_row(2)
        .die_on_row(9)
        .poison_on_row(14)
        .panic_on_row(21);
    // Force the systolic kernel so machine-work totals are comparable
    // against the sequential reference below.
    let mut pipeline = DiffPipelineConfig::new(4)
        .kernel(Kernel::Systolic)
        .fault_plan(plan)
        .build();
    let (got, stats) = pipeline.diff_images(&a, &b).unwrap();
    assert_eq!(got, expected);
    assert_eq!(stats.rows, 24);
    assert_eq!(stats.retries, 3, "two panics + one orphaned chunk");
    assert_eq!(stats.respawns, 1);
    // Aggregated machine work matches the sequential reference: retries
    // re-run whole chunks but only the successful attempt is absorbed.
    let (_, seq_stats) = xor_image(&a, &b).unwrap();
    assert_eq!(stats.totals.iterations, seq_stats.totals.iterations);
}

// ---------------------------------------------------------------------------
// Job-granularity drills on the shared multi-image executor.
// ---------------------------------------------------------------------------

fn seeded_pair(height: usize, seed: u64) -> (RleImage, RleImage) {
    let params = GenParams::for_density(512, 0.3);
    let a = RowGenerator::new(params, seed).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.05), seed ^ 0xFA18);
    (a, b)
}

/// Drains one job through [`JobHandle::collect_next`], asserting the
/// result-isolation invariant along the way: every collected ticket lies
/// inside the handle's own `[lo, hi)` range. Returns the rows reassembled
/// in ticket order.
fn collect_job(handle: &JobHandle) -> Vec<RleRow> {
    let (lo, hi) = handle.tickets();
    let mut rows: Vec<Option<RleRow>> = vec![None; (hi - lo) as usize];
    while let Some(outcome) = handle
        .collect_next(None)
        .expect("collect without a deadline cannot time out")
    {
        let ticket = outcome.ticket.id();
        assert!(
            (lo..hi).contains(&ticket),
            "ticket {ticket} leaked into job {} (range {lo}..{hi})",
            handle.id()
        );
        let slot = &mut rows[(ticket - lo) as usize];
        assert!(slot.is_none(), "ticket {ticket} delivered twice");
        *slot = Some(
            outcome
                .result
                .expect("no faults exhaust the retry budget")
                .0,
        );
    }
    rows.into_iter()
        .map(|r| r.expect("every ticket delivered exactly once"))
        .collect()
}

#[test]
fn worker_death_between_two_in_flight_jobs_recovers_both_in_isolation() {
    quiet_injected_panics();
    // Both jobs are submitted before either is collected, so their chunks
    // interleave round-robin across the same shard set and the doomed
    // worker processes chunks from both jobs. Ticket 3 belongs to job A
    // (tickets 0..16): the worker dies mid-stream while job B's chunks
    // are also live on the shards.
    let (a1, b1) = seeded_pair(16, 0xD1E1);
    let (a2, b2) = seeded_pair(16, 0xD1E2);
    let executor = DiffExecutorConfig {
        threads: 2,
        fault_plan: Some(FaultPlan::new().die_on_row(3)),
        ..DiffExecutorConfig::default()
    }
    .build();
    let job_a = executor
        .submit_pair(&Arc::new(a1.clone()), &Arc::new(b1.clone()))
        .unwrap();
    let job_b = executor
        .submit_pair(&Arc::new(a2.clone()), &Arc::new(b2.clone()))
        .unwrap();
    assert_eq!(job_a.tickets(), (0, 16));
    assert_eq!(job_b.tickets(), (16, 32));

    // Collect the bystander first: it must complete bit-identically even
    // though the respawn happens underneath it.
    let got_b = collect_job(&job_b);
    assert_eq!(got_b, xor_image(&a2, &b2).unwrap().0.rows());
    let got_a = collect_job(&job_a);
    assert_eq!(got_a, xor_image(&a1, &b1).unwrap().0.rows());

    // The intervention is visible globally and charged per job: exactly
    // one respawn, owned by whichever job's chunk the dead worker held.
    let counters = executor.counters();
    assert_eq!(counters.respawns, 1, "the dead thread was replaced");
    assert!(counters.retries >= 1, "the orphaned chunk was re-enqueued");
    let (sup_a, sup_b) = (job_a.supervision(), job_b.supervision());
    assert_eq!(
        sup_a.respawns + sup_b.respawns,
        1,
        "the respawn is charged to exactly one owner, not smeared: {sup_a:?} {sup_b:?}"
    );
    assert_eq!(counters.retries, sup_a.retries + sup_b.retries);
    assert_eq!(executor.in_flight(), 0);
    assert_eq!(executor.workers(), 2, "pool size restored");
}

#[test]
fn fault_matrix_across_three_concurrent_jobs_stays_bit_identical() {
    quiet_injected_panics();
    // One fault of each flavour, each planted in a different job's ticket
    // range: panic in job 0 (tickets 0..10), death in job 1 (10..20),
    // poison in job 2 (20..30). All three jobs are in flight together.
    let plan = FaultPlan::new()
        .panic_on_row(3)
        .die_on_row(14)
        .poison_on_row(25);
    let executor = DiffExecutorConfig {
        threads: 3,
        fault_plan: Some(plan),
        ..DiffExecutorConfig::default()
    }
    .build();
    let pairs: Vec<(RleImage, RleImage)> =
        (0..3).map(|i| seeded_pair(10, 0xFA57 + i as u64)).collect();
    let handles: Vec<JobHandle> = pairs
        .iter()
        .map(|(a, b)| {
            executor
                .submit_pair(&Arc::new(a.clone()), &Arc::new(b.clone()))
                .unwrap()
        })
        .collect();
    for (i, (handle, (a, b))) in handles.iter().zip(&pairs).enumerate() {
        assert_eq!(handle.tickets(), (10 * i as u64, 10 * (i + 1) as u64));
        let got = collect_job(handle);
        assert_eq!(
            got,
            xor_image(a, b).unwrap().0.rows(),
            "job {i} must survive its fault bit-identically"
        );
    }
    let counters = executor.counters();
    assert!(
        counters.retries >= 2,
        "panic + orphaned chunk: {counters:?}"
    );
    assert_eq!(counters.respawns, 1, "{counters:?}");
    // Per-job attribution sums to the executor's totals.
    let sup: Vec<SupervisionCounters> = handles.iter().map(JobHandle::supervision).collect();
    assert_eq!(counters.retries, sup.iter().map(|s| s.retries).sum::<u64>());
    assert_eq!(
        counters.respawns,
        sup.iter().map(|s| s.respawns).sum::<u64>()
    );
    // The panic was planted in job 0's range and charged there.
    assert!(sup[0].retries >= 1, "{sup:?}");
    assert_eq!(executor.in_flight(), 0);

    // The pool is healthy afterwards: a clean job needs no interventions.
    let (a, b) = seeded_pair(10, 0xC1EA);
    let job = executor
        .diff_pair(&Arc::new(a.clone()), &Arc::new(b.clone()), None)
        .unwrap();
    assert_eq!(job.image, xor_image(&a, &b).unwrap().0);
    assert_eq!((job.stats.retries, job.stats.respawns), (0, 0));
}
