//! End-to-end integration: realistic pipelines spanning every crate —
//! workload generation → PBM interchange → RLE encoding → systolic
//! difference → verification against the dense ground truth.

use rle_systolic::bitimg::{convert, ops as dops, pbm};
use rle_systolic::harness::experiments::{fig1, fig3};
use rle_systolic::systolic_core::image::{xor_image, xor_image_parallel};
use rle_systolic::workload::motion::{Scene, SceneParams};
use rle_systolic::workload::pcb::{inspection_pair, typical_defects, PcbParams};
use rle_systolic::workload::{glyphs, ErrorModel, GenParams, RowGenerator};

#[test]
fn pcb_inspection_end_to_end() {
    let params = PcbParams {
        width: 1024,
        height: 128,
        ..Default::default()
    };
    let (reference, scan) = inspection_pair(&params, &typical_defects(), 7);

    // Ship the scan through PBM, as a real acquisition pipeline would.
    let scan_dense = convert::decode(&scan);
    let mut p4 = Vec::new();
    pbm::write_p4(&scan_dense, &mut p4).unwrap();
    let received = pbm::read(&mut &p4[..]).unwrap();
    assert_eq!(received, scan_dense, "PBM transport must be lossless");
    let received_rle = convert::encode(&received);
    assert_eq!(received_rle, scan);

    // Systolic inspection result equals the dense ground truth.
    let (diff, stats) = xor_image(&reference, &received_rle).unwrap();
    let truth = dops::xor(&convert::decode(&reference), &scan_dense);
    assert_eq!(convert::decode(&diff), truth);
    assert!(stats.rows == 128);

    // Defects exist and are sparse.
    assert!(diff.ones() > 0, "injected defects must be visible");
    assert!(
        diff.density() < 0.01,
        "defects must be sparse: {}",
        diff.density()
    );

    // Parallel row processing changes nothing.
    let (par_diff, par_stats) = xor_image_parallel(&reference, &received_rle, 4).unwrap();
    assert_eq!(par_diff, diff);
    assert_eq!(par_stats.totals.iterations, stats.totals.iterations);
}

#[test]
fn motion_pipeline_systolic_matches_dense() {
    let scene = Scene::new(
        SceneParams {
            width: 320,
            height: 64,
            objects: 3,
            max_speed: 2.0,
        },
        9,
    );
    let frames = scene.sequence(4);
    for t in 1..frames.len() {
        let (diff, _) = xor_image(&frames[t - 1], &frames[t]).unwrap();
        let truth = dops::xor(
            &convert::decode(&frames[t - 1]),
            &convert::decode(&frames[t]),
        );
        assert_eq!(convert::decode(&diff), truth, "frame {t}");
    }
}

#[test]
fn motion_frames_are_cheap_for_the_systolic_machine() {
    let scene = Scene::new(
        SceneParams {
            width: 640,
            height: 128,
            objects: 4,
            max_speed: 2.0,
        },
        3,
    );
    let (f0, f1) = (scene.frame_rle(0), scene.frame_rle(1));
    let (_, stats) = xor_image(&f0, &f1).unwrap();
    // Consecutive frames are similar: the worst row needs only a few
    // iterations even though rows hold many runs.
    assert!(
        stats.max_row_iterations <= 8,
        "slowest row took {} iterations",
        stats.max_row_iterations
    );
}

#[test]
fn glyph_recognition_picks_the_right_template() {
    let scanned = glyphs::perturb(&glyphs::render("7", 2), 6, 11);
    let scanned_rle = convert::encode(&scanned);
    let mut best: Option<(char, u64)> = None;
    for c in '0'..='9' {
        let template = glyphs::render_rle(&c.to_string(), 2);
        let (diff, _) = xor_image(&template, &scanned_rle).unwrap();
        let score = diff.ones();
        if best.is_none() || score < best.unwrap().1 {
            best = Some((c, score));
        }
    }
    assert_eq!(best.unwrap().0, '7');
}

#[test]
fn paper_workload_statistics_are_sane() {
    // The full §5 pipeline: generate, perturb, measure.
    let params = GenParams::for_density(10_000, 0.3);
    let mut gen = RowGenerator::new(params, 123);
    let a = gen.next_row();
    assert!((a.density() - 0.3).abs() < 0.06);
    assert!(
        (a.run_count() as f64 - 250.0).abs() < 60.0,
        "{} runs",
        a.run_count()
    );

    let b = rle_systolic::workload::apply_errors(&a, &ErrorModel::fraction(0.05), 5);
    let (diff, stats) = rle_systolic::systolic_core::systolic_xor(&a, &b).unwrap();
    assert_eq!(diff, rle_systolic::rle::ops::xor(&a, &b));
    // Similar images: far fewer iterations than the sequential k1 + k2.
    let (_, seq) = rle_systolic::rle::ops::xor_raw_with_stats(&a, &b);
    assert!(
        stats.iterations < seq.iterations / 2,
        "systolic {} vs sequential {}",
        stats.iterations,
        seq.iterations
    );
}

#[test]
fn harness_golden_experiments_pass() {
    assert!(fig1::run().all_match());
    assert_eq!(fig3::run().iterations, 3);
}

#[test]
fn image_round_trip_through_ascii_and_rle() {
    let art = "\
.####..####.\n\
.#..#..#..#.\n\
.####..####.\n";
    let img = rle_systolic::rle::RleImage::from_ascii(art);
    assert_eq!(img.to_ascii(), art);
    let dense = convert::decode(&img);
    assert_eq!(convert::encode(&dense), img);
}
