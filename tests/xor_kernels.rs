//! Kernel-equivalence suite: the adaptive hybrid kernel and both forced
//! kernels must be bit-identical to the canonical RLE XOR
//! ([`rle::ops::xor`]) on every input — across the full density sweep
//! (empty → sparse → the calibrated crossover → dense → full), at odd and
//! word-unaligned widths, and on the valid-but-non-canonical rows the
//! paper admits as input.

mod common;

use common::row_pair;
use proptest::prelude::*;
use rle_systolic::rle;
use rle_systolic::rle::{RleRow, Run};
use rle_systolic::systolic_core::engine::kernel::{diff_row, KernelScratch, PACKED_RUNS_PER_WORD};
use rle_systolic::systolic_core::{Kernel, KernelChoice};
use rle_systolic::workload::{errors, ErrorModel, GenParams, RowGenerator};

/// Runs one row pair through every kernel policy and checks each against
/// the canonical reference. Returns the choice the adaptive policy made.
fn assert_kernels_agree(a: &RleRow, b: &RleRow) -> KernelChoice {
    let expected = rle::ops::xor(a, b);
    let mut scratch = KernelScratch::new();
    let mut auto_choice = KernelChoice::FastPath;
    for kernel in [Kernel::Auto, Kernel::Rle, Kernel::Packed, Kernel::Systolic] {
        let (got, stats, choice) = diff_row(kernel, &mut scratch, a, b)
            .unwrap_or_else(|e| panic!("{kernel:?} failed: {e}"));
        assert_eq!(
            got, expected,
            "{kernel:?} (chose {choice:?}) disagrees with rle::ops::xor on\n  a={a:?}\n  b={b:?}"
        );
        assert_eq!(stats.k1, a.run_count());
        assert_eq!(stats.k2, b.run_count());
        // The systolic machine reports the raw (uncoalesced) extraction
        // size; the host kernels report the canonical count.
        assert!(stats.output_runs >= got.run_count());
        if kernel == Kernel::Auto {
            auto_choice = choice;
        }
    }
    auto_choice
}

/// A row of the given width with `runs` unit runs spread evenly, shifted
/// by `offset` pixels — deterministic density control for the crossover
/// sweep (distinct offsets keep the pair from hitting the equal-rows fast
/// path).
fn evenly_spread(width: u32, runs: usize, offset: u32) -> RleRow {
    let mut row = RleRow::new(width);
    if runs == 0 {
        return row;
    }
    let stride = (width as usize / runs).max(2);
    for i in 0..runs {
        let start = (i * stride) as u32 + offset;
        if start >= width {
            break;
        }
        row.push_run(Run::new(start, 1)).unwrap();
    }
    row
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xor_kernels_agree_on_random_rows(
        // The shimmed proptest has no flat_map, so vary the width by
        // cropping a max-width pair down to the sampled width.
        (a, b) in ((0usize..7), row_pair(1000, 16)).prop_map(|(i, (a, b))| {
            const WIDTHS: [u32; 7] = [64, 65, 127, 128, 300, 511, 1000];
            (a.crop(0, WIDTHS[i]), b.crop(0, WIDTHS[i]))
        }),
    ) {
        assert_kernels_agree(&a, &b);
    }
}

#[test]
fn xor_kernels_agree_across_the_density_sweep() {
    // 0.02 ≈ near-empty, 0.5 = balanced, 0.95 ≈ near-full (truly empty
    // rows are covered by the degenerate test); widths include
    // word-aligned and ragged tails.
    for width in [64u32, 65, 127, 512, 1000] {
        for density in [0.02, 0.1, 0.3, 0.5, 0.8, 0.95] {
            let params = GenParams::for_density(width, density);
            let a = RowGenerator::new(params, 0xD00D + width as u64).next_row();
            let b = errors::apply_errors(&a, &ErrorModel::fraction(0.1), 0xBEEF);
            assert_kernels_agree(&a, &b);
        }
    }
}

#[test]
fn xor_kernels_agree_around_the_calibrated_threshold() {
    // The adaptive policy flips to the packed kernel when
    // `k1 + k2 > PACKED_RUNS_PER_WORD * words`; probe the boundary
    // run-count for ±2 on both word-aligned and ragged widths.
    for width in [256u32, 300, 1000] {
        let words = (width as usize).div_ceil(64);
        let crossover = PACKED_RUNS_PER_WORD * words;
        for total in crossover.saturating_sub(2)..=crossover + 2 {
            let a = evenly_spread(width, total / 2, 0);
            let b = evenly_spread(width, total - total / 2, 1);
            let choice = assert_kernels_agree(&a, &b);
            let runs = a.run_count() + b.run_count();
            if runs > crossover {
                assert_eq!(choice, KernelChoice::Packed, "width {width}, {runs} runs");
            } else if runs > 0 && a.runs() != b.runs() {
                assert_eq!(choice, KernelChoice::Rle, "width {width}, {runs} runs");
            }
        }
    }
}

#[test]
fn packed_kernel_is_bit_identical_at_every_simd_level() {
    use rle_systolic::systolic_core::SimdLevel;
    // Force each level explicitly (the SYSTOLIC_SIMD env path is the same
    // resolve call, exercised by CI re-running this suite under each
    // value); a request above the host's capability clamps down, so every
    // scratch built here is executable.
    for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
        let mut scratch = KernelScratch::with_simd(level);
        assert!(
            scratch.simd() <= SimdLevel::detect(),
            "forced level must clamp to hardware: {} on {}",
            scratch.simd(),
            SimdLevel::detect()
        );
        for width in [64u32, 65, 127, 300, 512, 1000] {
            for density in [0.02, 0.1, 0.3, 0.5, 0.8, 0.95] {
                let params = GenParams::for_density(width, density);
                let a = RowGenerator::new(params, 0x51D + width as u64).next_row();
                let b = errors::apply_errors(&a, &ErrorModel::fraction(0.1), 0xFEED);
                let expected = rle::ops::xor(&a, &b);
                let (got, stats, _) = diff_row(Kernel::Packed, &mut scratch, &a, &b)
                    .unwrap_or_else(|e| panic!("{level} failed: {e}"));
                assert_eq!(
                    got, expected,
                    "SIMD {level} disagrees at width {width}, density {density}"
                );
                assert_eq!(stats.k1, a.run_count());
                assert_eq!(stats.k2, b.run_count());
            }
        }
    }
}

#[test]
fn xor_kernels_agree_on_degenerate_rows() {
    for width in [1u32, 2, 63, 64, 65] {
        let empty = RleRow::new(width);
        let full = RleRow::from_pairs(width, &[(0, width)]).unwrap();
        for (a, b) in [
            (empty.clone(), empty.clone()), // both empty → fast path
            (empty.clone(), full.clone()),  // one side empty → copy
            (full.clone(), empty.clone()),
            (full.clone(), full.clone()), // equal → annihilates
        ] {
            let choice = assert_kernels_agree(&a, &b);
            assert_eq!(choice, KernelChoice::FastPath, "width {width}");
        }
    }
}

#[test]
fn xor_kernels_agree_on_non_canonical_input() {
    // Adjacent runs are valid input; every kernel must canonicalize its
    // output regardless.
    let a = RleRow::from_runs(16, vec![Run::new(0, 3), Run::new(3, 2), Run::new(8, 1)]).unwrap();
    let b = RleRow::from_runs(16, vec![Run::new(2, 4), Run::new(6, 2), Run::new(10, 6)]).unwrap();
    assert_kernels_agree(&a, &b);
    // One side empty with a non-canonical other side: the fast-path copy
    // must still coalesce.
    let empty = RleRow::new(16);
    assert_kernels_agree(&a, &empty);
    assert_kernels_agree(&empty, &b);
}
