//! The journal's durability property, byte by byte.
//!
//! The `RDA2` journal claims that a frame is durable iff its commit
//! record reached the disk, and that *any* crash — at any byte of the
//! write stream — leaves an archive that reopens to exactly the committed
//! prefix, bit-identically, with no panic on any input. These suites
//! check that claim the only convincing way: exhaustively.
//!
//! * **Truncation sweep** (always on): every prefix of a clean journal
//!   image reopens, recovers exactly the frames whose commits survived,
//!   and `fsck` agrees.
//! * **Corruption sweep** (always on): a bit flip in every byte either
//!   recovers cleanly (torn-tail truncation) or fails with a typed
//!   error — never a panic, and never silently wrong frames.
//! * **Crash sweep** (`fault-injection`): the failpoint storage wrapper
//!   cuts, short-writes, or errors the write stream at every offset
//!   while the journal is actually appending — exercising the live
//!   append/sync error paths, not just post-hoc file surgery.

use rle_systolic::archive::{ArchiveError, ArchiveFile, ArchiveOptions, FsyncPolicy, MemStorage};
use rle_systolic::rle::RleImage;
use rle_systolic::workload::{FrameSequence, GenParams, SequenceParams};

const FRAMES: usize = 24;
const INTERVAL: usize = 5;

fn opts() -> ArchiveOptions {
    ArchiveOptions {
        keyframe_interval: INTERVAL,
        fsync: FsyncPolicy::Always,
    }
}

/// A deterministic ≥20-frame sequence from the workload generator —
/// realistic run structure, small enough that an exhaustive byte sweep
/// stays fast.
fn frames() -> Vec<RleImage> {
    let params = SequenceParams {
        gen: GenParams::for_density(64, 0.2),
        height: 6,
        churn: 0.4,
    };
    FrameSequence::new(params, 0x0DDA_2CA5).take_frames(FRAMES)
}

/// A clean journal image of `frames()`, plus each frame's commit-end
/// offset.
fn clean_journal(frames: &[RleImage]) -> (Vec<u8>, Vec<u64>) {
    let mut journal = ArchiveFile::create_on(MemStorage::new(), opts()).unwrap();
    for f in frames {
        journal.append(f).unwrap();
    }
    let ends = journal.frame_ends();
    (journal.into_storage().into_bytes(), ends)
}

/// Asserts the recovery contract on a persisted byte image: reopen
/// succeeds, recovers exactly the frames whose commit records are within
/// the persisted bytes, every recovered frame extracts bit-identically,
/// the stat identities close, and fsck agrees the result is clean.
fn assert_recovers_committed_prefix(
    persisted: Vec<u8>,
    frames: &[RleImage],
    ends: &[u64],
    label: &str,
) {
    let persisted_len = persisted.len() as u64;
    let expected = ends.iter().filter(|&&e| e <= persisted_len).count();
    let mut back = ArchiveFile::open_on(MemStorage::from_bytes(persisted), opts())
        .unwrap_or_else(|e| panic!("{label}: reopen failed: {e}"));
    assert_eq!(back.len(), expected, "{label}: committed-frame count");
    for (i, f) in frames.iter().take(expected).enumerate() {
        let got = back
            .extract(i)
            .unwrap_or_else(|e| panic!("{label}: extract({i}) failed: {e}"));
        assert_eq!(&got, f, "{label}: frame {i} must be bit-identical");
    }
    // Stat identities: the committed region accounts for every byte, and
    // the keyframe cadence holds over the recovered prefix.
    let stats = back.stat();
    assert_eq!(stats.frames, expected, "{label}: stat frames");
    assert_eq!(
        stats.keyframes,
        expected.div_ceil(INTERVAL),
        "{label}: keyframe cadence over the recovered prefix"
    );
    if expected > 0 {
        assert_eq!(
            stats.journal_bytes,
            ends[expected - 1],
            "{label}: committed bytes end at the last surviving commit"
        );
    }
    // Recovery is idempotent: the repaired image reopens with nothing
    // left to truncate, and fsck deep-verifies it clean.
    let mut storage = back.into_storage();
    let report = ArchiveFile::<MemStorage>::fsck(&mut storage, false)
        .unwrap_or_else(|e| panic!("{label}: fsck failed: {e}"));
    assert!(report.clean(), "{label}: fsck after recovery: {report:?}");
    assert_eq!(report.frames, expected, "{label}: fsck frame count");
    assert_eq!(report.verified, expected, "{label}: fsck deep-verify count");
    let reback = ArchiveFile::open_on(storage, opts()).unwrap();
    assert!(
        reback.recovery().clean(),
        "{label}: second open must find nothing to repair"
    );
}

/// Every truncation point of a ≥20-frame journal: reopening recovers
/// exactly the committed frames, bit-identically, and fsck closes clean.
/// (A pure truncation is what any crash leaves once the page cache is
/// taken out of the picture, so this is the crash sweep's footprint even
/// without the fault-injection feature.)
#[test]
fn every_truncation_recovers_exactly_the_committed_prefix() {
    let frames = frames();
    let (bytes, ends) = clean_journal(&frames);
    assert!(ends.len() >= 20, "sweep must cover a ≥20-frame sequence");
    for cut in 0..=bytes.len() {
        assert_recovers_committed_prefix(
            bytes[..cut].to_vec(),
            &frames,
            &ends,
            &format!("truncation at {cut}"),
        );
    }
}

/// A bit flip in every byte of the journal: open either recovers (the
/// damage reads as a torn tail and is truncated) or fails with a typed
/// error — never a panic — and whatever frames survive extract either
/// bit-identically or with a typed error. The flipped bit rotates with
/// the byte index so every bit position gets covered across the file.
#[test]
fn single_bit_flips_never_panic_and_never_lie() {
    let frames = frames();
    let (bytes, _) = clean_journal(&frames);
    for byte in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 1 << (byte % 8);
        let label = format!("bit flip at {byte}");
        match ArchiveFile::open_on(MemStorage::from_bytes(corrupt.clone()), opts()) {
            Err(
                ArchiveError::BadMagic
                | ArchiveError::HeaderCorrupt
                | ArchiveError::UnsupportedVersion { .. }
                | ArchiveError::ZeroInterval
                | ArchiveError::SignatureMismatch { .. }
                | ArchiveError::CrcMismatch { .. }
                | ArchiveError::PayloadGeometry { .. }
                | ArchiveError::Payload(_)
                | ArchiveError::Rle(_)
                | ArchiveError::Truncated,
            ) => {}
            Err(other) => panic!("{label}: unexpected error class: {other}"),
            Ok(mut back) => {
                // Whatever was salvaged must be right or typed-fail; a
                // frame that extracts must match the original exactly.
                for (i, want) in frames.iter().enumerate().take(back.len()) {
                    if let Ok(got) = back.extract(i) {
                        assert_eq!(&got, want, "{label}: surviving frame {i}");
                    }
                }
            }
        }
        // fsck with repair must always converge to a clean journal, no
        // matter where the flip landed (header flips are typed errors).
        let mut storage = MemStorage::from_bytes(corrupt);
        if let Ok(report) = ArchiveFile::<MemStorage>::fsck(&mut storage, true) {
            let after = ArchiveFile::<MemStorage>::fsck(&mut storage, false).unwrap();
            assert!(
                after.clean(),
                "{label}: fsck(repair) did not converge: {report:?} then {after:?}"
            );
        }
    }
}

/// The live crash sweep: a failpoint storage wrapper kills the write
/// stream at every byte offset, in all three crash modes, while the
/// journal is appending under `FsyncPolicy::Always`. After each crash the
/// persisted bytes must reopen to exactly the committed prefix.
#[cfg(feature = "fault-injection")]
#[test]
fn crash_at_every_write_offset_recovers_the_committed_prefix() {
    use rle_systolic::archive::{CrashMode, CrashPlan, FaultStorage};
    use rle_systolic::workload::crash::CrashSweep;

    let frames = frames();
    let (bytes, ends) = clean_journal(&frames);
    let total = bytes.len() as u64;

    for mode in [CrashMode::Cut, CrashMode::ShortWrite, CrashMode::Error] {
        // Cut gets the full per-byte sweep; the erroring modes use the
        // boundary-focused plan (their persistence prefix only moves at
        // write granularity, so interiors repeat — the plan still samples
        // them deterministically).
        let sweep = match mode {
            CrashMode::Cut => CrashSweep::exhaustive(total),
            _ => CrashSweep::sampled(total, &ends, 4, 0xFA11_0E44_u64 ^ total),
        };
        for &at_byte in sweep.offsets() {
            let label = format!("{mode:?} at {at_byte}");
            let storage = FaultStorage::new(MemStorage::new(), CrashPlan { at_byte, mode });
            let mut journal = match ArchiveFile::create_on(storage, opts()) {
                Ok(j) => j,
                Err(e) => {
                    // Even create may crash; the error must be typed I/O.
                    assert!(matches!(e, ArchiveError::Io { .. }), "{label}: {e}");
                    continue;
                }
            };
            let mut io_failed = false;
            for f in &frames {
                match journal.append(f) {
                    Ok(_) => {}
                    Err(ArchiveError::Io { .. }) => {
                        io_failed = true;
                        break;
                    }
                    Err(other) => panic!("{label}: append failed non-I/O: {other}"),
                }
            }
            assert!(
                mode == CrashMode::Cut || io_failed || at_byte >= total,
                "{label}: erroring modes must surface the crash to the writer"
            );
            let persisted = journal.into_storage().into_inner().into_bytes();
            assert_recovers_committed_prefix(persisted, &frames, &ends, &label);
        }
    }
}
