//! Boundary behaviour of the execution engines: Theorem 1's iteration
//! bound hit exactly, and uneven cell-chunking in the parallel engine.

use proptest::prelude::*;
use rle_systolic::rle::{self, Pixel, RleRow, Run};
use rle_systolic::systolic_core::engine::parallel::systolic_xor_parallel;
use rle_systolic::systolic_core::systolic_xor;

/// A row of `count` disjoint, non-adjacent 2-px runs starting at `base`.
fn comb_row(width: Pixel, base: Pixel, count: usize) -> RleRow {
    let mut row = RleRow::new(width);
    for i in 0..count {
        let start = base + u32::try_from(i).unwrap() * 4;
        row.push_run(Run::new(start, 2)).unwrap();
    }
    row
}

/// An input pair needing *exactly* `k1 + k2` iterations: `a` holds `k1`
/// runs and `b` one run to the right of all of them. The lone `RegBig` run
/// must shift through all `k1` occupied cells (`k1` iterations) before
/// step 1 can move it into the empty `RegSmall` at cell `k1` (one more) —
/// `k1 + 1 = k1 + k2` total, meeting Theorem 1's `≤` with equality.
fn exact_bound_pair(k1: usize) -> (RleRow, RleRow) {
    let width = u32::try_from(k1 * 4 + 64).unwrap();
    let a = comb_row(width, 0, k1);
    let mut b = RleRow::new(width);
    b.push_run(Run::new(width - 8, 3)).unwrap();
    (a, b)
}

#[test]
fn exact_bound_terminates_sequentially() {
    let (a, b) = exact_bound_pair(40);
    let (diff, stats) = systolic_xor(&a, &b).expect("exact-bound run must terminate");
    assert_eq!(
        stats.iterations,
        stats.theorem1_bound(),
        "bound must be hit exactly"
    );
    assert_eq!(diff, rle::ops::xor(&a, &b));
}

#[test]
fn exact_bound_terminates_on_parallel_engine() {
    // Large enough (k1 + k2 + 1 cells > 2 * MIN_CELLS_PER_THREAD) that the
    // parallel engine really runs multi-worker instead of falling back.
    let (a, b) = exact_bound_pair(2_000);
    let (seq_diff, seq_stats) = systolic_xor(&a, &b).expect("sequential");
    assert_eq!(seq_stats.iterations, seq_stats.theorem1_bound());

    for threads in [2usize, 4] {
        let (par_diff, par_stats) = systolic_xor_parallel(&a, &b, threads)
            .unwrap_or_else(|e| panic!("threads={threads}: legal final iteration rejected: {e}"));
        assert_eq!(par_diff, seq_diff, "threads={threads}");
        assert_eq!(
            par_stats.iterations, seq_stats.iterations,
            "threads={threads}"
        );
        assert!(par_stats.within_theorem1(), "threads={threads}");
    }
}

#[test]
fn uneven_chunks_deterministic_cases() {
    // Cell counts that do not divide evenly by the chunk size, so the last
    // chunk is short and the right-edge carry check runs on a chunk whose
    // length differs from the others.
    for (k1, k2, threads) in [(700, 325, 2), (1025, 512, 3), (769, 768, 4), (1200, 337, 5)] {
        let width = u32::try_from((k1 + k2) * 4 + 64).unwrap();
        let a = comb_row(width, 0, k1);
        let b = comb_row(width, 1, k2);
        let (seq_diff, seq_stats) = systolic_xor(&a, &b).unwrap();
        let (par_diff, par_stats) = systolic_xor_parallel(&a, &b, threads).unwrap();
        assert_eq!(par_diff, seq_diff, "k1={k1} k2={k2} threads={threads}");
        assert_eq!(par_stats, seq_stats, "k1={k1} k2={k2} threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random large similar pairs across worker counts: every uneven
    // `n % chunk != 0` split must reproduce the sequential machine
    // bit-for-bit, including the statistics.
    #[test]
    fn uneven_chunking_matches_sequential(
        k1 in 550usize..900,
        drops in prop::collection::vec(0usize..500, 1..6),
        extra in 0u32..3,
        threads in 2usize..6,
    ) {
        let width = u32::try_from(k1 * 4 + 64).unwrap();
        let a = comb_row(width, 0, k1);
        // b: a with a few runs dropped and an optional tail run appended —
        // similar inputs, so iteration counts stay small while the cell
        // count (k1 + k2) rarely divides evenly.
        let mut runs: Vec<Run> = a.runs().to_vec();
        for d in drops {
            let idx = d % runs.len();
            runs.remove(idx);
        }
        if extra > 0 {
            runs.push(Run::new(width - 8, extra));
        }
        let b = RleRow::from_runs(width, runs).unwrap();

        let (seq_diff, seq_stats) = systolic_xor(&a, &b).unwrap();
        let (par_diff, par_stats) = systolic_xor_parallel(&a, &b, threads).unwrap();
        prop_assert_eq!(par_diff, seq_diff);
        prop_assert_eq!(par_stats, seq_stats);
        prop_assert!(par_stats.within_theorem1());
    }
}
