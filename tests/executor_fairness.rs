//! Fairness, isolation and bit-identity proofs for the shared multi-image
//! executor — the proof harness for job-level scheduling.
//!
//! The executor's scheduling contract, as exercised here:
//!
//! * **Fairness / no starvation**: jobs are planned into chunks and the
//!   chunks of concurrent jobs interleave round-robin across the work
//!   shards. A small job submitted while large jobs are in flight waits
//!   at most for the work *already queued ahead of it* (FIFO per shard) —
//!   a stream of big neighbours cannot push it back indefinitely. The
//!   drill asserts a bounded multiple of the big jobs' own service time.
//! * **Work conservation under skew**: when shards drain unevenly, idle
//!   workers steal queued chunks (`chunks_stolen` nonzero) instead of
//!   spinning while another shard backs up.
//! * **Result isolation**: under concurrent submit / collect / abandon
//!   churn, every collected ticket lies inside its owning job's range and
//!   no row ever routes to a bystander job — including rows of abandoned
//!   jobs, which are discarded, never re-delivered.
//! * **Bit identity**: whatever the interleaving, every job's output
//!   equals both sequential references ([`xor_image`] and
//!   [`RleImage::xor`]) exactly.
//!
//! These run without `fault-injection`; the same invariants under worker
//! death live in `pipeline_faults.rs` (job-granularity drills).

use rle_systolic::rle::{RleImage, RleRow};
use rle_systolic::systolic_core::image::xor_image;
use rle_systolic::systolic_core::{DiffExecutor, DiffExecutorConfig, JobHandle};
use rle_systolic::workload::{errors, ErrorModel, GenParams, RowGenerator};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn image_pair(width: u32, height: usize, seed: u64) -> (Arc<RleImage>, Arc<RleImage>) {
    let params = GenParams::for_density(width, 0.3);
    let a = RowGenerator::new(params, seed).next_image(height);
    let b = errors::apply_errors_image(&a, &ErrorModel::fraction(0.06), seed ^ 0xFA1A);
    (Arc::new(a), Arc::new(b))
}

/// Drains a job via [`JobHandle::collect_next`], asserting every ticket
/// stays inside the handle's own range, and returns the reassembled rows.
fn collect_job(handle: &JobHandle) -> Vec<RleRow> {
    let (lo, hi) = handle.tickets();
    let mut rows: Vec<Option<RleRow>> = vec![None; (hi - lo) as usize];
    while let Some(outcome) = handle
        .collect_next(None)
        .expect("collect without a deadline cannot time out")
    {
        let ticket = outcome.ticket.id();
        assert!(
            (lo..hi).contains(&ticket),
            "ticket {ticket} leaked into job {} (range {lo}..{hi})",
            handle.id()
        );
        let slot = &mut rows[(ticket - lo) as usize];
        assert!(slot.is_none(), "ticket {ticket} delivered twice");
        *slot = Some(outcome.result.expect("clean run: no row errors").0);
    }
    rows.into_iter()
        .map(|r| r.expect("every ticket delivered exactly once"))
        .collect()
}

// ---------------------------------------------------------------------------
// Fairness: small jobs are not starved by a stream of big neighbours.
// ---------------------------------------------------------------------------

#[test]
fn small_jobs_complete_within_a_bounded_multiple_of_big_job_service_time() {
    const BIG_ROWS: usize = 128;
    const SMALL_ROWS: usize = 8;
    const BIG_JOBS: usize = 4; // per big submitter
    const SMALL_JOBS: usize = 16; // per small submitter

    let executor: Arc<DiffExecutor> = Arc::new(DiffExecutorConfig::new(4).build());
    let big_lat: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let small_lat: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Two submitters keep the executor saturated with big jobs …
        for submitter in 0u64..2 {
            let executor = Arc::clone(&executor);
            let big_lat = &big_lat;
            scope.spawn(move || {
                for round in 0..BIG_JOBS as u64 {
                    let (a, b) = image_pair(512, BIG_ROWS, 0xB16 + submitter * 97 + round);
                    let t0 = Instant::now();
                    let job = executor.diff_pair(&a, &b, None).unwrap();
                    big_lat.lock().unwrap().push(t0.elapsed());
                    assert_eq!(job.image, xor_image(&a, &b).unwrap().0);
                }
            });
        }
        // … while two more submit skewed-small jobs and time each one.
        for submitter in 0u64..2 {
            let executor = Arc::clone(&executor);
            let small_lat = &small_lat;
            scope.spawn(move || {
                for round in 0..SMALL_JOBS as u64 {
                    let (a, b) = image_pair(512, SMALL_ROWS, 0x5A11 + submitter * 97 + round);
                    let t0 = Instant::now();
                    let job = executor.diff_pair(&a, &b, None).unwrap();
                    small_lat.lock().unwrap().push(t0.elapsed());
                    assert_eq!(job.image, xor_image(&a, &b).unwrap().0);
                }
            });
        }
    });

    let big = big_lat.into_inner().unwrap();
    let small = small_lat.into_inner().unwrap();
    assert_eq!(big.len(), 2 * BIG_JOBS);
    assert_eq!(small.len(), 2 * SMALL_JOBS);

    // Fair-share bound: a small job waits at most for the chunks already
    // queued when it arrived — in the worst case every in-flight big job —
    // never for big jobs submitted *after* it. With blocking submitters at
    // most two big jobs are ever ahead, so 16× the work ratio of slack on
    // top of that absorbs scheduler noise on a loaded CI box; a starved
    // small job (queued behind the entire big stream) blows through this
    // by an order of magnitude.
    let max_big = big.iter().copied().max().unwrap();
    let worst_small = small.iter().copied().max().unwrap();
    let bound = Duration::from_millis(20).max(3 * max_big);
    assert!(
        worst_small <= bound,
        "starved: worst small-job latency {worst_small:?} exceeds {bound:?} \
         (max big-job service time {max_big:?})"
    );
    assert_eq!(executor.in_flight(), 0, "quiescent after the storm");
}

// ---------------------------------------------------------------------------
// Work conservation: uneven shard drain triggers stealing.
// ---------------------------------------------------------------------------

#[test]
fn skewed_chunk_load_is_rebalanced_by_stealing() {
    // Single-row chunks spread round-robin over 4 shards: whichever worker
    // drains its shard first must steal from a sibling instead of idling.
    // Stealing is load-dependent, so drive rounds until observed (bounded).
    let executor = DiffExecutorConfig {
        threads: 4,
        chunk_target: Some(1),
        observe: Some(rle_systolic::systolic_core::obs::ObsConfig::default()),
        ..DiffExecutorConfig::default()
    }
    .build();
    let mut stolen = 0u64;
    for round in 0..20u64 {
        let (a, b) = image_pair(768, 96, 0x57EA + round);
        let job = executor.diff_pair(&a, &b, None).unwrap();
        assert_eq!(job.image, xor_image(&a, &b).unwrap().0);
        stolen += job.stats.chunks_stolen;
        if stolen > 0 {
            break;
        }
    }
    assert!(
        stolen > 0,
        "no chunk was ever stolen across 20 skewed rounds: \
         idle workers are not rebalancing the shards"
    );
    // The per-job attribution never exceeds the executor-wide counter.
    let snap = executor.observer().unwrap().metrics_snapshot();
    assert!(snap.chunks_stolen >= stolen, "{snap:?}");
}

// ---------------------------------------------------------------------------
// Isolation: concurrent submit / collect / abandon churn never routes a
// row to the wrong job.
// ---------------------------------------------------------------------------

#[test]
fn results_route_only_to_the_owning_job_under_churn() {
    let executor: Arc<DiffExecutor> = Arc::new(DiffExecutorConfig::new(3).build());

    std::thread::scope(|scope| {
        for submitter in 0u64..3 {
            let executor = Arc::clone(&executor);
            scope.spawn(move || {
                for round in 0u64..6 {
                    let height = 6 + 5 * submitter as usize + round as usize;
                    let (a, b) = image_pair(448, height, 0x150 + submitter * 31 + round);
                    let handle = executor.submit_pair(&a, &b).unwrap();
                    if round % 3 == 2 {
                        // Churn: walk away mid-job. Its rows must be
                        // discarded, never delivered to anyone else.
                        let _ = handle
                            .collect_next(Some(Instant::now()))
                            .map(drop);
                        handle.abandon();
                        continue;
                    }
                    let got = collect_job(&handle);
                    assert_eq!(
                        got,
                        xor_image(&a, &b).unwrap().0.rows(),
                        "submitter {submitter} round {round}"
                    );
                }
            });
        }
    });

    // Quiescence: abandoned rows drain (workers discard stale deliveries
    // on arrival) and nothing stays in flight.
    let settled_by = Instant::now() + Duration::from_secs(10);
    while executor.abandoned() > 0 && Instant::now() < settled_by {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(executor.abandoned(), 0, "stale deliveries all reaped");
    assert_eq!(executor.in_flight(), 0);

    // The healed executor still produces exact diffs.
    let (a, b) = image_pair(448, 12, 0xF1A1);
    let job = executor.diff_pair(&a, &b, None).unwrap();
    assert_eq!(job.image, xor_image(&a, &b).unwrap().0);
}

// ---------------------------------------------------------------------------
// Differential suite: many submitters, one executor, two references.
// ---------------------------------------------------------------------------

#[test]
fn multi_submitter_differential_suite_is_bit_identical_to_both_references() {
    let executor: Arc<DiffExecutor> = Arc::new(DiffExecutorConfig::new(3).build());

    std::thread::scope(|scope| {
        for submitter in 0u64..4 {
            let executor = Arc::clone(&executor);
            scope.spawn(move || {
                for round in 0u64..6 {
                    let seed = 0xD1FF + submitter * 1_009 + round;
                    let width = 64 + 128 * (1 + submitter as u32);
                    let height = 1 + 4 * round as usize + submitter as usize;
                    let (a, b) = image_pair(width, height, seed);
                    let job = executor.diff_pair(&a, &b, None).unwrap();
                    let reference = a.xor(&b).expect("same dimensions");
                    assert_eq!(
                        job.image, reference,
                        "submitter {submitter} round {round}: RleImage::xor"
                    );
                    assert_eq!(
                        job.image,
                        xor_image(&a, &b).unwrap().0,
                        "submitter {submitter} round {round}: xor_image"
                    );
                    assert_eq!(job.stats.rows, height);
                }
            });
        }
    });
    assert_eq!(executor.in_flight(), 0);
    assert_eq!(executor.abandoned(), 0);
}
