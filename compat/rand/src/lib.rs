//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across runs and
//! platforms, which is all the seeded workloads and property tests need.
//! It makes no cryptographic claims whatsoever.

#![warn(missing_docs)]

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does for non-crypto use.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over a bounded interval. The blanket
/// [`SampleRange`] impls below route both `a..b` and `a..=b` through this
/// trait, which is what lets inference deduce the element type from the
/// call site exactly like upstream `rand` does.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f32::standard(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Upstream `StdRng` is ChaCha12; this stand-in trades that for a tiny
    /// dependency-free generator. Streams differ from upstream, which only
    /// matters to tests asserting exact values for a given seed — the
    /// workspace has none.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: upstream's small fast generator, same engine here.
    pub type SmallRng = StdRng;

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5u32);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
