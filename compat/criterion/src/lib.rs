//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's `benches/` targets use —
//! groups, `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple warm-up + N-sample
//! wall-clock loop. No statistical analysis, HTML reports or comparison
//! against saved baselines; each sample's mean/min/max is printed in a
//! stable one-line format that downstream scripts can grep.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let config = self.clone();
        run_one(&config, &id.into(), None, &mut f);
    }
}

/// Declares how much data one benchmark iteration processes; when set on a
/// group, each benchmark line also reports the mean per-second rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Declares the per-iteration data volume for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`, which receives `input` alongside the [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let config = self.config();
        run_one(
            &config,
            &format!("{}/{}", self.name, id.0),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let config = self.config();
        run_one(
            &config,
            &format!("{}/{}", self.name, id.into()),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}

    fn config(&self) -> Criterion {
        let mut c = self.parent.clone();
        if let Some(n) = self.sample_size {
            c.sample_size = n;
        }
        c
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{parameter}", function.into()))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] measures the routine.
pub struct Bencher {
    config: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`: warm-up, then `sample_size` timed samples with
    /// the per-sample iteration count chosen so a sample is long enough to
    /// time reliably.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also estimating the per-call cost.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut calls: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start
            .elapsed()
            .checked_div(calls as u32)
            .unwrap_or_default();

        // Pick iterations per sample so samples fill measurement_time.
        let budget = self.config.measurement_time.as_nanos() / self.config.sample_size as u128;
        let iters = if per_call.as_nanos() == 0 {
            1_000
        } else {
            (budget / per_call.as_nanos()).clamp(1, 1_000_000) as u32
        };

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn run_one(
    config: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        config: config.clone(),
        samples: Vec::new(),
    };
    f(&mut bencher);
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let rate = match throughput {
        Some(t) if mean.as_secs_f64() > 0.0 => {
            let (count, unit) = match t {
                Throughput::Bytes(n) => (n, "B/s"),
                Throughput::Elements(n) => (n, "elem/s"),
            };
            format!(" {:.3e} {unit}", count as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<40} mean {:>12.3?} min {:>12.3?} max {:>12.3?} ({} samples){rate}",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Builds the group-runner function `criterion_main!` invokes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("t");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 1), &4u64, |b, &n| {
            b.iter(|| n * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
