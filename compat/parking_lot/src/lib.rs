//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly). Poisoning is handled by taking
//! the inner value anyway — identical to parking_lot's semantics, where a
//! panicking holder simply releases the lock.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisitions never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_usable_across_scoped_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 400);
    }
}
