//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest's API this workspace's suites use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, strategies
//! over integer ranges, tuples, `prop::collection::vec`, `any::<T>()`,
//! `Just`, and `prop_map`. Cases are generated from a deterministic
//! per-test seed (derived from the test name), so failures reproduce by
//! re-running the test. There is **no shrinking**: a failing case panics
//! with the values' `Debug` rendering instead of a minimised one.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Marker trait backing [`any`].
pub trait Arbitrary {
    /// The canonical full-domain strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyOf<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyOf(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Mirrors the `proptest::prop` module namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Failure value property bodies may return early with `?`, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Marks the current case as failed with the given reason.
    pub fn fail(reason: impl std::fmt::Display) -> Self {
        Self(reason.to_string())
    }

    /// Upstream distinguishes rejection from failure; without shrinking or
    /// retry budgets the distinction is moot, so both fail the test.
    pub fn reject(reason: impl std::fmt::Display) -> Self {
        Self(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives the deterministic per-test RNG for `test_name`.
#[must_use]
pub fn rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            // The immediately-called closure gives `prop_assert!`'s early
            // `return Err(..)` a scope; clippy flags it as redundant.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("property failed on case {}: {}", __case, e);
                    }
                }
            }
        )*
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=6), v in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn mapping(x in (1u64..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use super::Strategy;
        let mut r1 = super::rng_for("a::b");
        let mut r2 = super::rng_for("a::b");
        let s = 0u64..1_000_000;
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
