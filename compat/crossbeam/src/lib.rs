//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` / `Scope::spawn`,
//! which std has provided natively since Rust 1.63. This shim adapts
//! `std::thread::scope` to crossbeam's call shape (closure receives the
//! scope, `scope()` returns a `Result`) so call sites compile unchanged.
//!
//! One behavioural difference: crossbeam catches panics of spawned threads
//! and surfaces them as `Err`; std propagates them when the scope exits.
//! Every call site in this workspace immediately `.expect()`s the result,
//! so both behaviours end in the same panic.

#![warn(missing_docs)]

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Spawn-capable handle passed to the [`scope`] closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // A plain `#[derive(Clone, Copy)]` would bound on `'env: Clone`-style
    // nonsense for lifetimes only; manual impls keep it unconditional.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// it can spawn siblings, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope: Scope<'scope, 'env> = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
