//! `rle-systolic` — a complete Rust reproduction of *"A Systolic Algorithm
//! to Process Compressed Binary Images"* (Ercal, Allen & Feng, IPPS 1999).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on one crate; the examples under `examples/` and the integration
//! suites under `tests/` are built against it.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`rle`] | `crates/rle` | RLE substrate: runs, rows, images, boolean ops, morphology, storage format |
//! | [`archive`] | `crates/archive` | versioned delta store: keyframes + per-row XOR deltas keyed by row signatures |
//! | [`bitimg`] | `crates/bitimg` | dense bitmaps, PBM I/O, parallel dense ops, conversions |
//! | [`systolic_core`] | `crates/core` | the paper's systolic machine, engines, traces, §6 extensions |
//! | [`workload`] | `crates/workload` | the §5 generator, error models, PCB/motion/glyph scenarios |
//! | [`rle_analysis`] | `crates/analysis` | components, features, template matching, 2-D morphology |
//! | [`harness`] | `crates/harness` | the experiments regenerating every paper artefact |
//!
//! # One-minute tour
//!
//! ```
//! use rle_systolic::prelude::*;
//!
//! // Encode two rows (the paper's Figure 1) and diff them on the machine.
//! let a = RleRow::from_pairs(40, &[(10, 3), (16, 2), (23, 2), (27, 3)])?;
//! let b = RleRow::from_pairs(40, &[(3, 4), (8, 5), (15, 5), (23, 2), (27, 4)])?;
//! let (diff, stats) = systolic_xor(&a, &b)?;
//! assert_eq!(stats.iterations, 3); // Figure 3's published cycle count
//!
//! // The same primitive drives whole-image work: difference masks can be
//! // cleaned, labelled and classified without ever decompressing.
//! let mask = RleImage::from_rows(40, vec![diff])?;
//! let labeling = label_components(&mask, Connectivity::Eight);
//! assert_eq!(labeling.count(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use archive;
pub use bitimg;
pub use diffd;
pub use harness;
pub use rle;
pub use rle_analysis;
pub use systolic_core;
pub use workload;

/// The names almost every user of the library wants in scope.
pub mod prelude {
    pub use bitimg::{BitRow, Bitmap};
    pub use rle::{RleImage, RleRow, Run};
    pub use rle_analysis::{label_components, Connectivity};
    pub use systolic_core::bus::{systolic_xor_bus, systolic_xor_mesh, BusArray, BusMode};
    pub use systolic_core::image::{xor_image, xor_image_parallel, RowPipeline};
    pub use systolic_core::{systolic_xor, ArrayStats, SystolicArray, SystolicError};
    pub use workload::{ErrorModel, GenParams, RowGenerator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let row = RleRow::from_pairs(16, &[(0, 4)]).unwrap();
        let (diff, _) = systolic_xor(&row, &row.clone()).unwrap();
        assert!(diff.is_empty());
        let _ = (
            Bitmap::new(4, 4),
            BitRow::new(4),
            Connectivity::Four,
            BusMode::Mesh,
        );
    }
}
